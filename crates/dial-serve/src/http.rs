//! Hand-rolled HTTP/1.1 front-end over `std::net::TcpListener`.
//!
//! The protocol surface is deliberately tiny: GET plus one POST
//! (`/v1/ingest`), JSON responses, `Connection: close` on every reply.
//! Each accepted connection gets its own short-lived thread (connections
//! are cheap; the expensive part — running experiments — is bounded by
//! the engine's admission scheduler, which is where load is shed). The
//! one long-lived route is `GET /v1/stream`: a chunked
//! `text/event-stream` of seal deltas and era transitions that holds its
//! connection thread until the client leaves, `?max=N` frames have been
//! sent, or a drain begins.
//!
//! # API v1
//!
//! All endpoints live under `/v1`; the original unversioned paths answer
//! `308 Permanent Redirect` with a `Location` header pointing at their
//! `/v1` successor, so old clients keep working with one extra hop.
//! Every non-200 response carries the same JSON envelope:
//!
//! ```json
//! {"error": {"code": "<machine_code>", "message": "<human text>", "detail": {...}}}
//! ```
//!
//! `code` is stable and machine-matchable; `detail` carries structured
//! context (the valid ids on `unknown_experiment`, the target on
//! `moved_permanently`) and is `{}` when there is nothing to add.
//!
//! # Front-door protection (DESIGN §12)
//!
//! The request head must arrive whole within `read_timeout` — the budget
//! covers the *entire* header window, so a slow-loris client dribbling a
//! byte per second is cut off at the same deadline as a silent one (408).
//! Heads over `max_header_bytes` answer 431; a `Content-Length` above
//! `max_body_bytes` answers 413 without reading the body. Writes carry
//! `write_timeout` so a client that stops reading cannot wedge a
//! connection thread. During a graceful drain every request answers
//! `503` + `Retry-After` while in-flight work finishes.

use crate::engine::{AnalyzeError, Engine, IngestError, Role, SyncExportError};
use crate::store::StoreSummary;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle `/v1/stream` connection waits before emitting an SSE
/// comment so intermediaries keep the connection alive.
const SSE_HEARTBEAT: Duration = Duration::from_secs(2);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Concurrent experiment runs admitted onto the shared pool.
    pub threads: usize,
    /// Bounded admission queue in front of the running slots; a full
    /// queue sheds requests with 503.
    pub queue_capacity: usize,
    /// Total budget for the request head to arrive — not per read() but
    /// for the whole header window, so slow-loris clients get 408 too.
    pub read_timeout: Duration,
    /// Socket write timeout; a client that stops reading is disconnected.
    pub write_timeout: Duration,
    /// Request heads larger than this answer 431.
    pub max_header_bytes: usize,
    /// A declared `Content-Length` above this answers 413.
    pub max_body_bytes: usize,
    /// Optional per-request deadline budget; expired requests answer 504
    /// and cooperative experiment code unwinds early to free its slot.
    pub request_deadline: Option<Duration>,
    /// How long a graceful drain waits for in-flight work before
    /// abandoning it.
    pub drain_timeout: Duration,
    /// Live mode: events a [`crate::Engine`] may hold unsealed before
    /// ingest batches are shed with 429 (watermarks drain the buffer).
    pub max_pending_events: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self {
            port: 8080,
            threads,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_header_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024,
            request_deadline: None,
            drain_timeout: Duration::from_secs(10),
            max_pending_events: 512 * 1024,
        }
    }
}

/// A running server; dropping it without [`Server::shutdown`] leaves the
/// accept thread running until process exit.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    drain_timeout: Duration,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    pub fn start(engine: Arc<Engine>, cfg: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let draining = Arc::clone(&draining);
            let active = Arc::clone(&active);
            let cfg = Arc::new(cfg.clone());
            std::thread::Builder::new().name("dial-serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&engine);
                    let draining = Arc::clone(&draining);
                    let active = Arc::clone(&active);
                    let cfg = Arc::clone(&cfg);
                    active.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new().name("dial-serve-conn".into()).spawn(
                        move || {
                            let _ = handle_connection(stream, &engine, &cfg, &draining);
                            active.fetch_sub(1, Ordering::SeqCst);
                        },
                    );
                }
            })?
        };
        Ok(Self {
            addr,
            engine,
            stop,
            draining,
            active,
            drain_timeout: cfg.drain_timeout,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server is shut down from another thread.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Immediate shutdown: stop accepting, wait for in-flight connections
    /// and scheduler jobs up to the drain deadline, then abandon and log
    /// whatever is still running. Returns the abandoned job ids.
    pub fn shutdown(mut self) -> Vec<u64> {
        let deadline = Instant::now() + self.drain_timeout;
        self.stop_accepting();
        self.wait_connections(deadline);
        self.finish_engine(deadline)
    }

    /// Graceful drain (DESIGN §12): keep the listener up but answer every
    /// new request `503` + `Retry-After` while in-flight requests finish;
    /// when they have (or the drain deadline passes) stop accepting and
    /// wind down the scheduler within the same deadline. Returns the ids
    /// of any jobs the deadline forced us to abandon.
    pub fn graceful_shutdown(mut self) -> Vec<u64> {
        let deadline = Instant::now() + self.drain_timeout;
        self.draining.store(true, Ordering::SeqCst);
        self.wait_connections(deadline);
        self.stop_accepting();
        self.finish_engine(deadline)
    }

    /// Stops the accept loop: set the flag, poke the listener (it only
    /// observes the flag around an accept), join the thread.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Waits for in-flight connection threads, bounded by `deadline`.
    fn wait_connections(&self, deadline: Instant) {
        while self.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Bounded engine wind-down; logs and returns the abandoned job ids.
    fn finish_engine(&self, deadline: Instant) -> Vec<u64> {
        let abandoned = self.engine.shutdown_within(Some(deadline));
        if !abandoned.is_empty() {
            let ids: Vec<String> = abandoned.iter().map(|id| id.to_string()).collect();
            eprintln!(
                "dial-serve: drain deadline passed with {} job(s) abandoned: [{}]",
                abandoned.len(),
                ids.join(", ")
            );
        }
        abandoned
    }
}

// Owned fields throughout: the vendored serde derive does not support
// lifetime parameters, and these bodies are tiny.
#[derive(Serialize)]
struct ErrorEnvelope {
    error: ErrorBody,
}

#[derive(Serialize)]
struct ErrorBody {
    code: String,
    message: String,
    detail: Value,
}

#[derive(Serialize)]
struct ExperimentRow {
    id: String,
    title: String,
    paper_claim: String,
}

#[derive(Serialize)]
struct SummaryBody {
    snapshot: String,
    params: String,
    experiments: usize,
    counts: StoreSummary,
}

/// One routed reply: status, JSON body (or raw octets for sync segment
/// fetches), and optional `Location` (308/421) / `Retry-After` (drain
/// 503) headers.
struct Response {
    status: u16,
    body: String,
    /// When set, the reply is `application/octet-stream` of these bytes
    /// and `body` is ignored — the sync segment wire format.
    raw: Option<Vec<u8>>,
    location: Option<String>,
    retry_after: Option<u64>,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self { status, body, raw: None, location: None, retry_after: None }
    }

    /// A 200 of raw bytes (CRC-framed sync batches).
    fn octets(bytes: Vec<u8>) -> Self {
        Self {
            status: 200,
            body: String::new(),
            raw: Some(bytes),
            location: None,
            retry_after: None,
        }
    }

    /// The uniform error envelope; `detail` is `{}` when `None`.
    fn error(status: u16, code: &str, message: String, detail: Option<Value>) -> Self {
        let envelope = ErrorEnvelope {
            error: ErrorBody {
                code: code.to_string(),
                message,
                detail: detail.unwrap_or_else(|| Value::Object(Default::default())),
            },
        };
        Self::json(status, to_json(&envelope))
    }

    /// A 308 to `location`, with the envelope as body for JSON clients
    /// that do not follow redirects.
    fn redirect(location: String) -> Self {
        let mut detail = BTreeMap::new();
        detail.insert("location".to_string(), Value::String(location.clone()));
        let mut r = Self::error(
            308,
            "moved_permanently",
            format!("this endpoint moved to {location}"),
            Some(Value::Object(detail)),
        );
        r.location = Some(location);
        r
    }

    /// The drain-mode answer: 503 with a `Retry-After` hint.
    fn draining(retry_after_secs: u64) -> Self {
        let mut r = Self::error(
            503,
            "draining",
            "server is draining for shutdown, retry shortly".to_string(),
            None,
        );
        r.retry_after = Some(retry_after_secs);
        r
    }
}

fn handle_connection(
    mut stream: TcpStream,
    engine: &Engine,
    cfg: &ServeConfig,
    draining: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let (head, leftover) = match read_request_head(&mut stream, engine, cfg) {
        Ok(pair) => pair,
        Err(kind) => {
            engine.metrics().request_rejected();
            let r = match kind {
                HeadError::TooLarge => Response::error(
                    431,
                    "headers_too_large",
                    format!("request head exceeds {} bytes", cfg.max_header_bytes),
                    None,
                ),
                HeadError::Timeout => Response::error(
                    408,
                    "request_timeout",
                    format!("request head did not arrive within {:?}", cfg.read_timeout),
                    None,
                ),
            };
            return respond_and_drain(&mut stream, engine, &r);
        }
    };
    let request_line = head.lines().next().unwrap_or_default().to_string();
    let mut parts = request_line.split_whitespace();
    let (method, raw_path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            let r = Response::error(
                400,
                "malformed_request",
                "could not parse the request line".to_string(),
                None,
            );
            return respond(&mut stream, engine, &r);
        }
    };
    if let Some(len) = content_length(&head) {
        if len > cfg.max_body_bytes {
            engine.metrics().request_rejected();
            let r = Response::error(
                413,
                "payload_too_large",
                format!("declared body of {len} bytes exceeds {} bytes", cfg.max_body_bytes),
                None,
            );
            return respond_and_drain(&mut stream, engine, &r);
        }
    }
    let is_ingest = raw_path == "/v1/ingest" || raw_path.starts_with("/v1/ingest?");
    if !(method == "GET" || (method == "POST" && is_ingest)) {
        let r = Response::error(
            405,
            "method_not_allowed",
            format!("method {method} is not supported here; use GET (or POST /v1/ingest)"),
            None,
        );
        return respond(&mut stream, engine, &r);
    }
    // During a drain, every parsed request is turned away with the
    // retry hint — in-flight requests (already past this gate) finish.
    if draining.load(Ordering::SeqCst) {
        engine.metrics().drain_rejection();
        let r = Response::draining(cfg.drain_timeout.as_secs().max(1));
        return respond(&mut stream, engine, &r);
    }
    // Split the query off for routing but keep `raw_path` whole so
    // redirects preserve it verbatim.
    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (raw_path, None),
    };
    if method == "POST" {
        // The only POST past the gate above is /v1/ingest.
        return handle_ingest(&mut stream, engine, cfg, &head, leftover);
    }
    if path == "/v1/stream" {
        // The stream holds its connection open for as long as the client
        // stays; it must not sit under the per-request deadline budget.
        return handle_stream(&mut stream, engine, query, draining);
    }

    // The request deadline budget starts once the head has arrived (the
    // header window has its own budget above).
    let deadline = cfg.request_deadline.map(|d| Instant::now() + d);
    // Chaos hook: a stalled handler burns request time; with a deadline
    // configured the stall converts into a prompt 504 below.
    if let Some(dial_fault::FaultAction::Delay(d)) =
        dial_fault::inject(dial_fault::FaultPoint::HandlerStall)
    {
        engine.metrics().fault("stall");
        std::thread::sleep(d);
    }
    let response = if deadline.is_some_and(|d| Instant::now() >= d) {
        engine.metrics().deadline_exceeded();
        deadline_response()
    } else {
        route(engine, path, query, raw_path, deadline)
    };
    if response.status >= 500 {
        engine.metrics().server_error();
    }
    respond(&mut stream, engine, &response)
}

/// Why reading the request head failed.
enum HeadError {
    /// Grew past `max_header_bytes` (431).
    TooLarge,
    /// The total header window elapsed — silent *or* dribbling client
    /// (408).
    Timeout,
}

/// Reads the request head (everything through `\r\n\r\n`) under one
/// total deadline: the socket read timeout is re-armed with the
/// *remaining* window before every read, so a slow-loris client trickling
/// bytes cannot extend its welcome past `read_timeout`. Any body bytes
/// that arrived in the same reads are returned alongside the head.
fn read_request_head(
    stream: &mut TcpStream,
    engine: &Engine,
    cfg: &ServeConfig,
) -> Result<(String, Vec<u8>), HeadError> {
    let deadline = Instant::now() + cfg.read_timeout;
    // Chaos hook: pretend the client (or the kernel) is slow by burning
    // header-window time before the read. Injected exactly once per
    // request head — a per-read() injection would key the fault sequence
    // to TCP fragmentation, which is not deterministic across runs.
    if let Some(dial_fault::FaultAction::Delay(d)) =
        dial_fault::inject(dial_fault::FaultPoint::SlowRead)
    {
        engine.metrics().fault("slow_read");
        std::thread::sleep(d);
    }
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // lint:allow(missing-checkpoint): every iteration re-checks its own read deadline; the loop cannot outlive it
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(HeadError::Timeout);
        }
        if stream.set_read_timeout(Some(deadline - now)).is_err() {
            return Err(HeadError::Timeout);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok((String::from_utf8_lossy(&buf).into_owned(), Vec::new())),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > cfg.max_header_bytes {
                    return Err(HeadError::TooLarge);
                }
                if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    let body = buf.split_off(pos + 4);
                    return Ok((String::from_utf8_lossy(&buf).into_owned(), body));
                }
            }
            Err(_) => return Err(HeadError::Timeout),
        }
    }
}

/// `POST /v1/ingest`: reads the NDJSON batch body and applies it to the
/// live stream engine. The declared length was already bounds-checked
/// against `max_body_bytes` before dispatch.
fn handle_ingest(
    stream: &mut TcpStream,
    engine: &Engine,
    cfg: &ServeConfig,
    head: &str,
    mut body: Vec<u8>,
) -> std::io::Result<()> {
    engine.metrics().request("/v1/ingest");
    // A follower never takes writes: 421 + `Location` naming the leader,
    // before any body bytes are consumed (the drain below mops them up).
    if engine.role() == Role::Follower {
        let leader = engine.leader_addr().unwrap_or("unknown").to_string();
        let mut detail = BTreeMap::new();
        detail.insert("leader".to_string(), Value::String(leader.clone()));
        let mut r = Response::error(
            421,
            "not_leader",
            format!("this node is a follower; send writes to the leader at {leader}"),
            Some(Value::Object(detail)),
        );
        r.location = Some(format!("http://{leader}/v1/ingest"));
        return respond_and_drain(stream, engine, &r);
    }
    let Some(len) = content_length(head) else {
        let r = Response::error(
            411,
            "length_required",
            "POST /v1/ingest needs a Content-Length header".to_string(),
            None,
        );
        return respond(stream, engine, &r);
    };
    // Chaos hook: a stalled ingest pipeline (slow disk, slow upstream);
    // the batch still applies after the delay.
    if let Some(dial_fault::FaultAction::Delay(d)) =
        dial_fault::inject(dial_fault::FaultPoint::IngestStall)
    {
        engine.metrics().fault("ingest_stall");
        std::thread::sleep(d);
    }
    // Read the rest of the body under one total deadline, mirroring the
    // header window's slow-loris defence.
    let deadline = Instant::now() + cfg.read_timeout;
    let mut chunk = [0u8; 4096];
    // lint:allow(missing-checkpoint): every iteration re-checks its own read deadline; the loop cannot outlive it
    while body.len() < len {
        let now = Instant::now();
        if now >= deadline || stream.set_read_timeout(Some(deadline - now)).is_err() {
            engine.metrics().request_rejected();
            let r = Response::error(
                408,
                "request_timeout",
                format!("request body did not arrive within {:?}", cfg.read_timeout),
                None,
            );
            return respond(stream, engine, &r);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => {
                engine.metrics().request_rejected();
                let r = Response::error(
                    408,
                    "request_timeout",
                    format!("request body did not arrive within {:?}", cfg.read_timeout),
                    None,
                );
                return respond(stream, engine, &r);
            }
        }
    }
    if body.len() < len {
        engine.metrics().request_rejected();
        let r = Response::error(
            400,
            "truncated_body",
            format!("body ended after {} of {len} declared bytes", body.len()),
            None,
        );
        return respond(stream, engine, &r);
    }
    body.truncate(len);
    let text = String::from_utf8_lossy(&body);
    let response = match engine.ingest(&text) {
        Ok(report) => Response::json(
            200,
            format!(
                "{{\"accepted\":{},\"seals\":{},\"pending\":{},\"snapshot\":{}}}",
                report.events,
                report.seals,
                report.pending,
                json_str(&report.snapshot)
            ),
        ),
        Err(IngestError::NotLive) => not_live_response(),
        Err(IngestError::Parse(e)) => Response::error(400, "bad_event", e, None),
        Err(IngestError::Gap(e)) => Response::error(400, "event_gap", e, None),
        Err(IngestError::Backpressure { pending }) => {
            let mut r = Response::error(
                429,
                "ingest_backpressure",
                format!("{pending} events already pending; retry after the next seal"),
                None,
            );
            r.retry_after = Some(1);
            r
        }
        Err(IngestError::SealFailed) => Response::error(
            500,
            "seal_failed",
            "the seal panicked before commit; earlier events remain pending, retry the watermark"
                .to_string(),
            None,
        ),
    };
    if response.status >= 500 {
        engine.metrics().server_error();
    }
    respond(stream, engine, &response)
}

/// `GET /v1/stream`: a chunked `text/event-stream` of seal deltas. New
/// subscribers first replay every frame published so far, then follow
/// live. `?max=N` closes the stream after N frames (for curl-able
/// examples and tests); a drain closes every stream promptly.
fn handle_stream(
    stream: &mut TcpStream,
    engine: &Engine,
    query: Option<&str>,
    draining: &AtomicBool,
) -> std::io::Result<()> {
    engine.metrics().request("/v1/stream");
    let Some((history, rx)) = engine.subscribe() else {
        let r = not_live_response();
        return respond(stream, engine, &r);
    };
    engine.metrics().sse_client();
    let max_frames: Option<usize> = query
        .and_then(|q| q.split('&').find_map(|p| p.strip_prefix("max=")))
        .and_then(|v| v.parse().ok());
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    let reached = |sent: usize| max_frames.is_some_and(|m| sent >= m);
    let mut sent = 0usize;
    for frame in history {
        if reached(sent) {
            break;
        }
        write_chunk(stream, frame.as_bytes())?;
        engine.metrics().sse_frame();
        sent += 1;
    }
    let mut last_write = Instant::now();
    while !reached(sent) && !draining.load(Ordering::SeqCst) {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(frame) => {
                write_chunk(stream, frame.as_bytes())?;
                engine.metrics().sse_frame();
                sent += 1;
                last_write = Instant::now();
            }
            Err(RecvTimeoutError::Timeout) => {
                if last_write.elapsed() >= SSE_HEARTBEAT {
                    write_chunk(stream, b": keep-alive\n\n")?;
                    last_write = Instant::now();
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Terminal chunk: the client sees a clean end of stream.
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// One HTTP/1.1 chunk.
fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// The 409 answered when a sync endpoint is hit on a node without a
/// durable store.
fn no_sync_store_response() -> Response {
    Response::error(
        409,
        "no_store",
        "sync requires a durable store; start the leader with --live --data-dir".to_string(),
        None,
    )
}

/// The 409 answered when a live-only endpoint is hit on a snapshot
/// server.
fn not_live_response() -> Response {
    Response::error(
        409,
        "not_live",
        "this server serves a fixed snapshot; start it with --live to ingest or stream".to_string(),
        None,
    )
}

/// The declared `Content-Length`, if any header carries one.
fn content_length(head: &str) -> Option<usize> {
    head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

/// The unversioned v0 endpoints, kept answering as permanent redirects.
const LEGACY_PREFIXES: [&str; 5] = ["/healthz", "/experiments", "/summary", "/metrics", "/analyze"];

/// Dispatches a GET to a [`Response`].
fn route(
    engine: &Engine,
    path: &str,
    query: Option<&str>,
    raw_path: &str,
    deadline: Option<Instant>,
) -> Response {
    match path {
        "/v1/healthz" => {
            engine.metrics().request("/v1/healthz");
            // Schema v2: the v1 fields (status, mode, snapshot) keep
            // their names and order; role + sync join them.
            let body = format!(
                "{{\"version\":2,\"status\":\"ok\",\"mode\":{},\"snapshot\":{},\"role\":{},\"sync\":{}}}",
                json_str(if engine.is_live() { "live" } else { "snapshot" }),
                json_str(engine.store().fingerprint()),
                json_str(engine.role().name()),
                to_json(&engine.sync_status()),
            );
            Response::json(200, body)
        }
        "/v1/cluster" => {
            engine.metrics().request("/v1/cluster");
            Response::json(200, engine.cluster_json())
        }
        "/v1/sync/manifest" => {
            engine.metrics().request("/v1/sync/manifest");
            match engine.sync_manifest_json() {
                Some(body) => Response::json(200, body),
                None => no_sync_store_response(),
            }
        }
        _ if path.starts_with("/v1/sync/segment/") => {
            engine.metrics().request("/v1/sync/segment");
            let seq = &path["/v1/sync/segment/".len()..];
            match seq.parse::<u64>() {
                Err(_) => {
                    Response::error(400, "bad_seq", format!("`{seq}` is not a seal seq"), None)
                }
                Ok(seq) => match engine.export_sync_batch(seq) {
                    Ok(bytes) => Response::octets(bytes),
                    Err(SyncExportError::NoStore) => no_sync_store_response(),
                    Err(SyncExportError::NotFound) => Response::error(
                        404,
                        "unknown_segment",
                        format!("seal {seq} is not in the log (never sealed, or compacted away)"),
                        None,
                    ),
                    Err(SyncExportError::Store(e)) => Response::error(500, "store_error", e, None),
                },
            }
        }
        "/v1/experiments" => {
            engine.metrics().request("/v1/experiments");
            let rows: Vec<ExperimentRow> = engine
                .experiments()
                .iter()
                .map(|e| ExperimentRow {
                    id: e.id.clone(),
                    title: e.title.clone(),
                    paper_claim: e.paper_claim.clone(),
                })
                .collect();
            Response::json(200, to_json(&rows))
        }
        "/v1/summary" => {
            engine.metrics().request("/v1/summary");
            let body = SummaryBody {
                snapshot: engine.store().fingerprint().to_string(),
                params: engine.params().to_string(),
                experiments: engine.experiments().len(),
                counts: engine.store().summary().clone(),
            };
            Response::json(200, to_json(&body))
        }
        "/v1/metrics" => {
            engine.metrics().request("/v1/metrics");
            Response::json(200, to_json(&engine.metrics().snapshot()))
        }
        "/v1/store" => {
            engine.metrics().request("/v1/store");
            match engine.store_status() {
                Some(body) => Response::json(200, body),
                None => Response::error(
                    409,
                    "no_store",
                    "this server has no durable store; start with --live --data-dir".to_string(),
                    None,
                ),
            }
        }
        // GETs to the ingest endpoint (POSTs dispatch before routing).
        "/v1/ingest" => Response::error(
            405,
            "method_not_allowed",
            "ingest is write-only; use POST /v1/ingest".to_string(),
            None,
        ),
        "/v1/analyze" => {
            engine.metrics().request("/v1/analyze?ids");
            route_batch(engine, query, deadline)
        }
        _ if path.starts_with("/v1/analyze/") => {
            engine.metrics().request("/v1/analyze");
            let id = &path["/v1/analyze/".len()..];
            match engine.analyze_deadline(id, deadline) {
                Ok(body) => Response::json(200, body.as_str().to_string()),
                Err(err) => analyze_error_response(engine, &err, id),
            }
        }
        _ if LEGACY_PREFIXES.iter().any(|p| {
            path == *p || (path.starts_with(*p) && path.as_bytes().get(p.len()) == Some(&b'/'))
        }) =>
        {
            Response::redirect(format!("/v1{raw_path}"))
        }
        _ => Response::error(404, "unknown_endpoint", format!("no such endpoint: {path}"), None),
    }
}

/// `GET /v1/analyze?ids=a,b,c`: runs the batch concurrently on the shared
/// pool and returns `{"results": {id: body}, "errors": {id: envelope}}`.
fn route_batch(engine: &Engine, query: Option<&str>, deadline: Option<Instant>) -> Response {
    let Some(ids_param) = query.and_then(|q| {
        q.split('&').find_map(|pair| pair.strip_prefix("ids=")).filter(|v| !v.is_empty())
    }) else {
        return Response::error(
            400,
            "missing_ids",
            "batch analyze needs a non-empty `ids` query parameter, e.g. /v1/analyze?ids=table1,fig2".to_string(),
            None,
        );
    };
    // Deduplicate while keeping first-occurrence order, so the response
    // maps have one entry per id.
    let mut ids: Vec<String> = Vec::new();
    for id in ids_param.split(',').filter(|s| !s.is_empty()) {
        if !ids.iter().any(|seen| seen == id) {
            ids.push(id.to_string());
        }
    }
    if ids.is_empty() {
        return Response::error(
            400,
            "missing_ids",
            "the `ids` parameter contained no experiment ids".to_string(),
            None,
        );
    }

    let outcomes = match engine.analyze_many_deadline(&ids, deadline) {
        Ok(outcomes) => outcomes,
        // Name only the offending ids in the message, not the whole batch.
        Err(err) => {
            let label = match &err {
                AnalyzeError::Unknown { valid } => ids
                    .iter()
                    .filter(|id| !valid.contains(id))
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", "),
                _ => ids.join(", "),
            };
            return analyze_error_response(engine, &err, &label);
        }
    };

    // Splice cached bodies in verbatim: each `results` value stays
    // byte-identical to its single-experiment `/v1/analyze/{id}` body.
    let mut results = Vec::new();
    let mut errors = Vec::new();
    for (id, outcome) in &outcomes {
        match outcome {
            Ok(body) => results.push(format!("{}:{}", json_str(id), body)),
            Err(err) => {
                let r = analyze_error_response(engine, err, id);
                errors.push(format!("{}:{}", json_str(id), r.body));
            }
        }
    }
    let body =
        format!("{{\"results\":{{{}}},\"errors\":{{{}}}}}", results.join(","), errors.join(","));
    Response::json(200, body)
}

/// The 504 answered when a request's deadline budget runs out.
fn deadline_response() -> Response {
    Response::error(
        504,
        "deadline_exceeded",
        "the request deadline expired before a result was ready".to_string(),
        None,
    )
}

/// Maps an [`AnalyzeError`] to its enveloped response.
fn analyze_error_response(engine: &Engine, err: &AnalyzeError, id: &str) -> Response {
    match err {
        AnalyzeError::Unknown { valid } => {
            let mut detail = BTreeMap::new();
            detail.insert(
                "valid".to_string(),
                Value::Array(valid.iter().map(|v| Value::String(v.clone())).collect()),
            );
            Response::error(
                404,
                "unknown_experiment",
                format!("unknown experiment `{id}`"),
                Some(Value::Object(detail)),
            )
        }
        AnalyzeError::Saturated => {
            engine.metrics().shed();
            Response::error(503, "saturated", "server saturated, retry later".to_string(), None)
        }
        // The engine already counted deadlines_exceeded when it gave up.
        AnalyzeError::DeadlineExceeded => deadline_response(),
        AnalyzeError::Failed => Response::error(
            500,
            "experiment_failed",
            format!("experiment `{id}` failed to run"),
            None,
        ),
    }
}

fn to_json<T: Serialize>(value: &T) -> String {
    // lint:allow(unwrap-in-serve): serialising an in-memory value; failure is a serde bug, not a request error
    serde_json::to_string(value).expect("response bodies serialise")
}

/// JSON string literal for `s` (quotes + escaping).
fn json_str(s: &str) -> String {
    // lint:allow(unwrap-in-serve): serialising an in-memory value; failure is a serde bug, not a request error
    serde_json::to_string(&s).expect("strings serialise")
}

/// [`respond`] for requests rejected before their bytes were consumed:
/// after writing the reply, briefly drain whatever the client already
/// sent so closing the socket doesn't RST the unread data and destroy
/// the response before the client reads it.
fn respond_and_drain(
    stream: &mut TcpStream,
    engine: &Engine,
    response: &Response,
) -> std::io::Result<()> {
    let result = respond(stream, engine, response);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    result
}

fn respond(stream: &mut TcpStream, engine: &Engine, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let (ctype, payload): (&str, &[u8]) = match &response.raw {
        Some(bytes) => ("application/octet-stream", bytes.as_slice()),
        None => ("application/json", response.body.as_bytes()),
    };
    let location =
        response.location.as_ref().map(|l| format!("Location: {l}\r\n")).unwrap_or_default();
    let retry_after =
        response.retry_after.map(|s| format!("Retry-After: {s}\r\n")).unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {ctype}\r\n{location}{retry_after}Content-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        payload.len()
    );
    // Chaos hook: a truncated write simulates the peer (or a middlebox)
    // cutting the stream mid-response; the client sees a short read and
    // the server must shrug and move on.
    if let Some(dial_fault::FaultAction::Truncate(keep)) =
        dial_fault::inject(dial_fault::FaultPoint::TruncWrite)
    {
        engine.metrics().fault("trunc_write");
        let mut wire = head.into_bytes();
        wire.extend_from_slice(payload);
        wire.truncate(keep);
        stream.write_all(&wire)?;
        return stream.flush();
    }
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}
