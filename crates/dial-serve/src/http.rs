//! Hand-rolled HTTP/1.1 front-end over `std::net::TcpListener`.
//!
//! The protocol surface is deliberately tiny: GET only, JSON responses,
//! `Connection: close` on every reply. Each accepted connection gets its
//! own short-lived thread (connections are cheap; the expensive part —
//! running experiments — is bounded by the engine's admission scheduler,
//! which is where load is shed).
//!
//! # API v1
//!
//! All endpoints live under `/v1`; the original unversioned paths answer
//! `308 Permanent Redirect` with a `Location` header pointing at their
//! `/v1` successor, so old clients keep working with one extra hop.
//! Every non-200 response carries the same JSON envelope:
//!
//! ```json
//! {"error": {"code": "<machine_code>", "message": "<human text>", "detail": {...}}}
//! ```
//!
//! `code` is stable and machine-matchable; `detail` carries structured
//! context (the valid ids on `unknown_experiment`, the target on
//! `moved_permanently`) and is `{}` when there is nothing to add.

use crate::engine::{AnalyzeError, Engine};
use crate::store::StoreSummary;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Concurrent experiment runs admitted onto the shared pool.
    pub threads: usize,
    /// Bounded admission queue in front of the running slots; a full
    /// queue sheds requests with 503.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self { port: 8080, threads, queue_capacity: 64, read_timeout: Duration::from_secs(5) }
    }
}

/// A running server; dropping it without [`Server::shutdown`] leaves the
/// accept thread running until process exit.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    pub fn start(engine: Arc<Engine>, cfg: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new().name("dial-serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&engine);
                    let active = Arc::clone(&active);
                    active.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new().name("dial-serve-conn".into()).spawn(
                        move || {
                            let _ = handle_connection(stream, &engine, read_timeout);
                            active.fetch_sub(1, Ordering::SeqCst);
                        },
                    );
                }
            })?
        };
        Ok(Self { addr, engine, stop, active, accept_handle: Some(accept_handle) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server is shut down from another thread.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections
    /// (bounded wait), then stop the admission scheduler after it
    /// finishes the queued jobs.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes `stop` around an accept, so poke
        // it with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.engine.shutdown();
    }
}

// Owned fields throughout: the vendored serde derive does not support
// lifetime parameters, and these bodies are tiny.
#[derive(Serialize)]
struct ErrorEnvelope {
    error: ErrorBody,
}

#[derive(Serialize)]
struct ErrorBody {
    code: String,
    message: String,
    detail: Value,
}

#[derive(Serialize)]
struct HealthBody {
    status: String,
    snapshot: String,
}

#[derive(Serialize)]
struct ExperimentRow {
    id: String,
    title: String,
    paper_claim: String,
}

#[derive(Serialize)]
struct SummaryBody {
    snapshot: String,
    params: String,
    experiments: usize,
    counts: StoreSummary,
}

/// One routed reply: status, JSON body, and (for 308) a `Location`.
struct Response {
    status: u16,
    body: String,
    location: Option<String>,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self { status, body, location: None }
    }

    /// The uniform error envelope; `detail` is `{}` when `None`.
    fn error(status: u16, code: &str, message: String, detail: Option<Value>) -> Self {
        let envelope = ErrorEnvelope {
            error: ErrorBody {
                code: code.to_string(),
                message,
                detail: detail.unwrap_or_else(|| Value::Object(Default::default())),
            },
        };
        Self::json(status, to_json(&envelope))
    }

    /// A 308 to `location`, with the envelope as body for JSON clients
    /// that do not follow redirects.
    fn redirect(location: String) -> Self {
        let mut detail = BTreeMap::new();
        detail.insert("location".to_string(), Value::String(location.clone()));
        let mut r = Self::error(
            308,
            "moved_permanently",
            format!("this endpoint moved to {location}"),
            Some(Value::Object(detail)),
        );
        r.location = Some(location);
        r
    }
}

fn handle_connection(
    mut stream: TcpStream,
    engine: &Engine,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    let request_line = match read_request_line(&mut stream) {
        Ok(line) => line,
        Err(_) => {
            // Slow or dead client: answer 408 best-effort and close.
            let r = Response::error(
                408,
                "request_timeout",
                "request did not arrive in time".to_string(),
                None,
            );
            return respond(&mut stream, &r);
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, raw_path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            let r = Response::error(
                400,
                "malformed_request",
                "could not parse the request line".to_string(),
                None,
            );
            return respond(&mut stream, &r);
        }
    };
    if method != "GET" {
        let r = Response::error(
            405,
            "method_not_allowed",
            format!("method {method} is not supported; use GET"),
            None,
        );
        return respond(&mut stream, &r);
    }
    // Split the query off for routing but keep `raw_path` whole so
    // redirects preserve it verbatim.
    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (raw_path, None),
    };

    let response = route(engine, path, query, raw_path);
    if response.status >= 500 {
        engine.metrics().server_error();
    }
    respond(&mut stream, &response)
}

/// The unversioned v0 endpoints, kept answering as permanent redirects.
const LEGACY_PREFIXES: [&str; 5] = ["/healthz", "/experiments", "/summary", "/metrics", "/analyze"];

/// Dispatches a GET to a [`Response`].
fn route(engine: &Engine, path: &str, query: Option<&str>, raw_path: &str) -> Response {
    match path {
        "/v1/healthz" => {
            engine.metrics().request("/v1/healthz");
            let body = HealthBody {
                status: "ok".to_string(),
                snapshot: engine.store().fingerprint().to_string(),
            };
            Response::json(200, to_json(&body))
        }
        "/v1/experiments" => {
            engine.metrics().request("/v1/experiments");
            let rows: Vec<ExperimentRow> = engine
                .experiments()
                .iter()
                .map(|e| ExperimentRow {
                    id: e.id.clone(),
                    title: e.title.clone(),
                    paper_claim: e.paper_claim.clone(),
                })
                .collect();
            Response::json(200, to_json(&rows))
        }
        "/v1/summary" => {
            engine.metrics().request("/v1/summary");
            let body = SummaryBody {
                snapshot: engine.store().fingerprint().to_string(),
                params: engine.params().to_string(),
                experiments: engine.experiments().len(),
                counts: engine.store().summary().clone(),
            };
            Response::json(200, to_json(&body))
        }
        "/v1/metrics" => {
            engine.metrics().request("/v1/metrics");
            Response::json(200, to_json(&engine.metrics().snapshot()))
        }
        "/v1/analyze" => {
            engine.metrics().request("/v1/analyze?ids");
            route_batch(engine, query)
        }
        _ if path.starts_with("/v1/analyze/") => {
            engine.metrics().request("/v1/analyze");
            let id = &path["/v1/analyze/".len()..];
            match engine.analyze(id) {
                Ok(body) => Response::json(200, body.as_str().to_string()),
                Err(err) => analyze_error_response(engine, &err, id),
            }
        }
        _ if LEGACY_PREFIXES.iter().any(|p| {
            path == *p || (path.starts_with(*p) && path.as_bytes().get(p.len()) == Some(&b'/'))
        }) =>
        {
            Response::redirect(format!("/v1{raw_path}"))
        }
        _ => Response::error(404, "unknown_endpoint", format!("no such endpoint: {path}"), None),
    }
}

/// `GET /v1/analyze?ids=a,b,c`: runs the batch concurrently on the shared
/// pool and returns `{"results": {id: body}, "errors": {id: envelope}}`.
fn route_batch(engine: &Engine, query: Option<&str>) -> Response {
    let Some(ids_param) = query.and_then(|q| {
        q.split('&').find_map(|pair| pair.strip_prefix("ids=")).filter(|v| !v.is_empty())
    }) else {
        return Response::error(
            400,
            "missing_ids",
            "batch analyze needs a non-empty `ids` query parameter, e.g. /v1/analyze?ids=table1,fig2".to_string(),
            None,
        );
    };
    // Deduplicate while keeping first-occurrence order, so the response
    // maps have one entry per id.
    let mut ids: Vec<String> = Vec::new();
    for id in ids_param.split(',').filter(|s| !s.is_empty()) {
        if !ids.iter().any(|seen| seen == id) {
            ids.push(id.to_string());
        }
    }
    if ids.is_empty() {
        return Response::error(
            400,
            "missing_ids",
            "the `ids` parameter contained no experiment ids".to_string(),
            None,
        );
    }

    let outcomes = match engine.analyze_many(&ids) {
        Ok(outcomes) => outcomes,
        // Name only the offending ids in the message, not the whole batch.
        Err(err) => {
            let label = match &err {
                AnalyzeError::Unknown { valid } => ids
                    .iter()
                    .filter(|id| !valid.contains(id))
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", "),
                _ => ids.join(", "),
            };
            return analyze_error_response(engine, &err, &label);
        }
    };

    // Splice cached bodies in verbatim: each `results` value stays
    // byte-identical to its single-experiment `/v1/analyze/{id}` body.
    let mut results = Vec::new();
    let mut errors = Vec::new();
    for (id, outcome) in &outcomes {
        match outcome {
            Ok(body) => results.push(format!("{}:{}", json_str(id), body)),
            Err(err) => {
                let r = analyze_error_response(engine, err, id);
                errors.push(format!("{}:{}", json_str(id), r.body));
            }
        }
    }
    let body =
        format!("{{\"results\":{{{}}},\"errors\":{{{}}}}}", results.join(","), errors.join(","));
    Response::json(200, body)
}

/// Maps an [`AnalyzeError`] to its enveloped response.
fn analyze_error_response(engine: &Engine, err: &AnalyzeError, id: &str) -> Response {
    match err {
        AnalyzeError::Unknown { valid } => {
            let mut detail = BTreeMap::new();
            detail.insert(
                "valid".to_string(),
                Value::Array(valid.iter().map(|v| Value::String(v.clone())).collect()),
            );
            Response::error(
                404,
                "unknown_experiment",
                format!("unknown experiment `{id}`"),
                Some(Value::Object(detail)),
            )
        }
        AnalyzeError::Saturated => {
            engine.metrics().shed();
            // shed() already counts the 5xx; report 503 directly so the
            // generic 5xx hook doesn't double-count.
            Response::error(503, "saturated", "server saturated, retry later".to_string(), None)
        }
        AnalyzeError::Failed => Response::error(
            500,
            "experiment_failed",
            format!("experiment `{id}` failed to run"),
            None,
        ),
    }
}

fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("response bodies serialise")
}

/// JSON string literal for `s` (quotes + escaping).
fn json_str(s: &str) -> String {
    serde_json::to_string(&s).expect("strings serialise")
}

/// Reads up to the end of the request headers and returns the request
/// line. Bounded at 16 KiB — anything larger is not a request this server
/// understands.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    Ok(text.lines().next().unwrap_or_default().to_string())
}

fn respond(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let location =
        response.location.as_ref().map(|l| format!("Location: {l}\r\n")).unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: application/json\r\n{location}Content-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}
