//! Hand-rolled HTTP/1.1 front-end over `std::net::TcpListener`.
//!
//! The protocol surface is deliberately tiny: GET only, JSON responses,
//! `Connection: close` on every reply. Each accepted connection gets its
//! own short-lived thread (connections are cheap; the expensive part —
//! running experiments — is bounded by the engine's worker pool and
//! queue, which is where load is shed).

use crate::engine::{AnalyzeError, Engine};
use crate::store::StoreSummary;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Worker threads running experiments.
    pub threads: usize,
    /// Bounded admission queue in front of the workers; a full queue
    /// sheds requests with 503.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self { port: 8080, threads, queue_capacity: 64, read_timeout: Duration::from_secs(5) }
    }
}

/// A running server; dropping it without [`Server::shutdown`] leaves the
/// accept thread running until process exit.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    pub fn start(engine: Arc<Engine>, cfg: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new().name("dial-serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&engine);
                    let active = Arc::clone(&active);
                    active.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new().name("dial-serve-conn".into()).spawn(
                        move || {
                            let _ = handle_connection(stream, &engine, read_timeout);
                            active.fetch_sub(1, Ordering::SeqCst);
                        },
                    );
                }
            })?
        };
        Ok(Self { addr, engine, stop, active, accept_handle: Some(accept_handle) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server is shut down from another thread.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections
    /// (bounded wait), then stop the worker pool after it finishes the
    /// queued jobs.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes `stop` around an accept, so poke
        // it with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.engine.shutdown();
    }
}

// Owned fields throughout: the vendored serde derive does not support
// lifetime parameters, and these bodies are tiny.
#[derive(Serialize)]
struct UnknownExperimentBody {
    error: String,
    valid: Vec<String>,
}

#[derive(Serialize)]
struct HealthBody {
    status: String,
    snapshot: String,
}

#[derive(Serialize)]
struct ExperimentRow {
    id: String,
    title: String,
    paper_claim: String,
}

#[derive(Serialize)]
struct SummaryBody {
    snapshot: String,
    params: String,
    experiments: usize,
    counts: StoreSummary,
}

fn handle_connection(
    mut stream: TcpStream,
    engine: &Engine,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    let request_line = match read_request_line(&mut stream) {
        Ok(line) => line,
        Err(_) => {
            // Slow or dead client: answer 408 best-effort and close.
            return respond(&mut stream, 408, "{\"error\":\"request timeout\"}");
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "{\"error\":\"malformed request\"}"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "{\"error\":\"only GET is supported\"}");
    }
    // Drop any query string: parameters are fixed per server instance.
    let path = path.split('?').next().unwrap_or(path);

    let (status, body) = route(engine, path);
    if status >= 500 {
        engine.metrics().server_error();
    }
    respond(&mut stream, status, &body)
}

/// Dispatches a GET `path` to a `(status, JSON body)` pair.
fn route(engine: &Engine, path: &str) -> (u16, String) {
    match path {
        "/healthz" => {
            engine.metrics().request("/healthz");
            let body = HealthBody {
                status: "ok".to_string(),
                snapshot: engine.store().fingerprint().to_string(),
            };
            (200, to_json(&body))
        }
        "/experiments" => {
            engine.metrics().request("/experiments");
            let rows: Vec<ExperimentRow> = engine
                .experiments()
                .iter()
                .map(|e| ExperimentRow {
                    id: e.id.clone(),
                    title: e.title.clone(),
                    paper_claim: e.paper_claim.clone(),
                })
                .collect();
            (200, to_json(&rows))
        }
        "/summary" => {
            engine.metrics().request("/summary");
            let body = SummaryBody {
                snapshot: engine.store().fingerprint().to_string(),
                params: engine.params().to_string(),
                experiments: engine.experiments().len(),
                counts: engine.store().summary().clone(),
            };
            (200, to_json(&body))
        }
        "/metrics" => {
            engine.metrics().request("/metrics");
            (200, to_json(&engine.metrics().snapshot()))
        }
        _ if path.starts_with("/analyze/") => {
            engine.metrics().request("/analyze");
            let id = &path["/analyze/".len()..];
            match engine.analyze(id) {
                Ok(body) => (200, body.as_str().to_string()),
                Err(AnalyzeError::Unknown { valid }) => {
                    let body = UnknownExperimentBody {
                        error: format!("unknown experiment `{id}`"),
                        valid,
                    };
                    (404, to_json(&body))
                }
                Err(AnalyzeError::Saturated) => {
                    engine.metrics().shed();
                    // shed() already counts the 5xx; report 503 directly
                    // so the generic 5xx hook doesn't double-count.
                    (503, "{\"error\":\"server saturated, retry later\"}".to_string())
                }
                Err(AnalyzeError::Failed) => (500, "{\"error\":\"experiment failed\"}".to_string()),
            }
        }
        _ => (404, "{\"error\":\"no such endpoint\"}".to_string()),
    }
}

fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("response bodies serialise")
}

/// Reads up to the end of the request headers and returns the request
/// line. Bounded at 16 KiB — anything larger is not a request this server
/// understands.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    Ok(text.lines().next().unwrap_or_default().to_string())
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
