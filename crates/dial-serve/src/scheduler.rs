//! Experiment scheduler: bounded admission in front of the shared
//! [`dial_par`] work-stealing pool.
//!
//! DESIGN §7 rules out async runtimes — experiment runs are CPU-bound, so
//! execution belongs on the process-wide compute pool and the queue is the
//! only elasticity. The scheduler no longer owns threads: it is an
//! *admission facade*. At most `threads` jobs are in flight on the shared
//! pool at once; up to `queue_capacity` more wait in a FIFO queue; beyond
//! that [`Scheduler::submit`] fails fast and the HTTP layer sheds the
//! request with a 503 instead of letting latency grow unbounded.
//!
//! Sharing one pool means an experiment that itself calls
//! [`dial_par::parallel_map`] fans its chunks out over the same workers —
//! nested submission is deadlock-free because pool workers steal while
//! they wait (see `dial-par`'s scope module).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`Scheduler::submit`] when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated;

/// Bounded admission over the shared compute pool.
pub struct Scheduler {
    inner: Arc<Inner>,
}

struct Inner {
    pool: Arc<dial_par::Pool>,
    threads: usize,
    queue_capacity: usize,
    state: Mutex<State>,
    // Signalled on every job completion; `shutdown` waits on it.
    drained: Condvar,
}

struct State {
    /// Jobs dispatched to the pool and not yet finished.
    running: usize,
    /// Jobs admitted but waiting for a running slot.
    queue: VecDeque<Job>,
    /// Once set, new submissions shed; queued jobs still run.
    shut: bool,
}

impl Scheduler {
    /// Builds a facade admitting at most `threads` concurrent jobs onto
    /// the shared pool, with `queue_capacity` waiting slots behind them.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        assert!(threads > 0, "scheduler needs at least one running slot");
        Self {
            inner: Arc::new(Inner {
                pool: Arc::clone(dial_par::global()),
                threads,
                queue_capacity,
                state: Mutex::new(State { running: 0, queue: VecDeque::new(), shut: false }),
                drained: Condvar::new(),
            }),
        }
    }

    /// Admits a job, failing fast with [`Saturated`] when every running
    /// slot and every queue slot is taken (or after shutdown).
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), Saturated> {
        let job: Job = Box::new(job);
        {
            let mut st = self.inner.state.lock().expect("scheduler state lock");
            if st.shut {
                return Err(Saturated);
            }
            if st.running >= self.inner.threads {
                if st.queue.len() >= self.inner.queue_capacity {
                    return Err(Saturated);
                }
                st.queue.push_back(job);
                return Ok(());
            }
            st.running += 1;
        }
        dispatch(&self.inner, job);
        Ok(())
    }

    /// Sheds new submissions and blocks until the queue is drained and
    /// every in-flight job has finished. The shared pool itself stays up —
    /// other users of `dial_par::global()` are unaffected.
    pub fn shutdown(&self) {
        let mut st = self.inner.state.lock().expect("scheduler state lock");
        st.shut = true;
        while st.running > 0 || !st.queue.is_empty() {
            st = self.inner.drained.wait(st).expect("scheduler state lock");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs `job` on the shared pool; the guard hands the slot to the next
/// queued job (or releases it) even if the job panics.
fn dispatch(inner: &Arc<Inner>, job: Job) {
    let guard_inner = Arc::clone(inner);
    inner.pool.spawn(move || {
        let _slot = SlotGuard(guard_inner);
        job();
    });
}

struct SlotGuard(Arc<Inner>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let next = {
            let mut st = self.0.state.lock().expect("scheduler state lock");
            let next = st.queue.pop_front();
            if next.is_none() {
                st.running -= 1;
            }
            self.0.drained.notify_all();
            next
        };
        // Hand the freed slot straight to the head of the queue. `running`
        // is unchanged in that case: the slot transfers, it is not freed.
        if let Some(job) = next {
            dispatch(&self.0, job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_submitted_jobs_on_workers() {
        let s = Scheduler::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            // A full queue here is fine — retry until accepted.
            loop {
                let c = Arc::clone(&counter);
                let d = done.clone();
                if s.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    d.send(()).unwrap();
                })
                .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        for _ in 0..32 {
            done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn saturation_sheds_instead_of_blocking() {
        let s = Scheduler::new(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel();
        // Occupy the single running slot...
        s.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        // ...fill the single queue slot...
        s.submit(|| {}).unwrap();
        // ...and the next job must shed.
        assert_eq!(s.submit(|| {}), Err(Saturated));
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_finishes_queued_work() {
        let s = Scheduler::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            loop {
                let c = Arc::clone(&counter);
                if s.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        s.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        // Post-shutdown submissions shed.
        assert_eq!(s.submit(|| {}), Err(Saturated));
    }

    #[test]
    fn panicking_job_releases_its_slot() {
        let s = Scheduler::new(1, 4);
        let (done_tx, done_rx) = channel();
        s.submit(|| panic!("injected scheduler panic")).unwrap();
        // The slot frees despite the panic, so a later job still runs.
        loop {
            let d = done_tx.clone();
            if s.submit(move || d.send(()).unwrap()).is_ok() {
                break;
            }
            std::thread::yield_now();
        }
        done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
    }
}
