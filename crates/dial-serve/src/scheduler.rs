//! Experiment scheduler: bounded admission in front of the shared
//! [`dial_par`] work-stealing pool.
//!
//! DESIGN §7 rules out async runtimes — experiment runs are CPU-bound, so
//! execution belongs on the process-wide compute pool and the queue is the
//! only elasticity. The scheduler no longer owns threads: it is an
//! *admission facade*. At most `threads` jobs are in flight on the shared
//! pool at once; up to `queue_capacity` more wait in a FIFO queue; beyond
//! that [`Scheduler::submit`] fails fast and the HTTP layer sheds the
//! request with a 503 instead of letting latency grow unbounded.
//!
//! Every admitted job carries a monotonically increasing id, which is how
//! a deadline-bounded shutdown ([`Scheduler::shutdown_within`]) names the
//! jobs it had to abandon: drains must not hang the process on a wedged
//! experiment, but they must not lose it silently either.
//!
//! Sharing one pool means an experiment that itself calls
//! [`dial_par::parallel_map`] fans its chunks out over the same workers —
//! nested submission is deadlock-free because pool workers steal while
//! they wait (see `dial-par`'s scope module).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`Scheduler::submit`] when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated;

/// Bounded admission over the shared compute pool.
pub struct Scheduler {
    inner: Arc<Inner>,
}

struct Inner {
    pool: Arc<dial_par::Pool>,
    threads: usize,
    queue_capacity: usize,
    state: Mutex<State>,
    // Signalled on every job completion; shutdown waits on it.
    drained: Condvar,
}

struct State {
    /// Ids of jobs dispatched to the pool and not yet finished.
    running: Vec<u64>,
    /// Jobs admitted but waiting for a running slot.
    queue: VecDeque<(u64, Job)>,
    /// Next job id.
    next_id: u64,
    /// Once set, new submissions shed; queued jobs still run.
    shut: bool,
    /// Set by a deadline-expired shutdown: queued jobs were dropped and
    /// running jobs disowned, so later shutdowns return immediately
    /// instead of waiting on work nobody will collect.
    abandoned: bool,
}

impl Scheduler {
    /// Builds a facade admitting at most `threads` concurrent jobs onto
    /// the shared pool, with `queue_capacity` waiting slots behind them.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        assert!(threads > 0, "scheduler needs at least one running slot");
        Self {
            inner: Arc::new(Inner {
                pool: Arc::clone(dial_par::global()),
                threads,
                queue_capacity,
                state: Mutex::new(State {
                    running: Vec::new(),
                    queue: VecDeque::new(),
                    next_id: 0,
                    shut: false,
                    abandoned: false,
                }),
                drained: Condvar::new(),
            }),
        }
    }

    /// Admits a job, failing fast with [`Saturated`] when every running
    /// slot and every queue slot is taken (or after shutdown). On success
    /// returns the job's id.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<u64, Saturated> {
        let job: Job = Box::new(job);
        let id;
        {
            // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
            let mut st = self.inner.state.lock().expect("scheduler state lock");
            if st.shut {
                return Err(Saturated);
            }
            id = st.next_id;
            st.next_id += 1;
            if st.running.len() >= self.inner.threads {
                if st.queue.len() >= self.inner.queue_capacity {
                    return Err(Saturated);
                }
                st.queue.push_back((id, job));
                return Ok(id);
            }
            st.running.push(id);
        }
        dispatch(&self.inner, id, job);
        Ok(id)
    }

    /// Sheds new submissions and blocks until the queue is drained and
    /// every in-flight job has finished. The shared pool itself stays up —
    /// other users of `dial_par::global()` are unaffected.
    pub fn shutdown(&self) {
        let _ = self.shutdown_within(None);
    }

    /// [`Scheduler::shutdown`] bounded by a deadline: waits for in-flight
    /// and queued jobs until `deadline` (forever when `None`), then gives
    /// up — queued jobs are dropped unexecuted, running jobs keep their
    /// pool slots but nobody will collect them — and returns the ids of
    /// everything abandoned, so the caller can log what a hard drain cut.
    pub fn shutdown_within(&self, deadline: Option<Instant>) -> Vec<u64> {
        // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
        let mut st = self.inner.state.lock().expect("scheduler state lock");
        st.shut = true;
        while !st.abandoned && (!st.running.is_empty() || !st.queue.is_empty()) {
            match deadline {
                // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
                None => st = self.inner.drained.wait(st).expect("scheduler state lock"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break;
                    }
                    let (guard, _timeout) =
                        // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
                        self.inner.drained.wait_timeout(st, d - now).expect("scheduler state lock");
                    st = guard;
                }
            }
        }
        if st.running.is_empty() && st.queue.is_empty() {
            return Vec::new();
        }
        let mut abandoned: Vec<u64> = st.running.clone();
        abandoned.extend(st.queue.iter().map(|(id, _)| *id));
        // Dropping the queued closures releases them unexecuted; their
        // result channels disconnect and any waiting caller sees Failed.
        st.queue.clear();
        st.abandoned = true;
        abandoned
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs `job` on the shared pool; the guard hands the slot to the next
/// queued job (or releases it) even if the job panics.
fn dispatch(inner: &Arc<Inner>, id: u64, job: Job) {
    let guard_inner = Arc::clone(inner);
    inner.pool.spawn(move || {
        let _slot = SlotGuard(guard_inner, id);
        job();
    });
}

struct SlotGuard(Arc<Inner>, u64);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let next = {
            // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
            let mut st = self.0.state.lock().expect("scheduler state lock");
            st.running.retain(|id| *id != self.1);
            let next = st.queue.pop_front();
            // Hand the freed slot straight to the head of the queue: the
            // slot transfers, so the successor joins `running` before the
            // lock drops and the running count never dips spuriously.
            if let Some((id, _)) = &next {
                st.running.push(*id);
            }
            self.0.drained.notify_all();
            next
        };
        if let Some((id, job)) = next {
            dispatch(&self.0, id, job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs_on_workers() {
        let s = Scheduler::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            // A full queue here is fine — retry until accepted.
            loop {
                let c = Arc::clone(&counter);
                let d = done.clone();
                if s.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    d.send(()).unwrap();
                })
                .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        for _ in 0..32 {
            done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn saturation_sheds_instead_of_blocking() {
        let s = Scheduler::new(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel();
        // Occupy the single running slot...
        s.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        // ...fill the single queue slot...
        s.submit(|| {}).unwrap();
        // ...and the next job must shed.
        assert_eq!(s.submit(|| {}), Err(Saturated));
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_finishes_queued_work() {
        let s = Scheduler::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            loop {
                let c = Arc::clone(&counter);
                if s.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        s.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        // Post-shutdown submissions shed.
        assert_eq!(s.submit(|| {}), Err(Saturated));
    }

    #[test]
    fn panicking_job_releases_its_slot() {
        let s = Scheduler::new(1, 4);
        let (done_tx, done_rx) = channel();
        s.submit(|| panic!("injected scheduler panic")).unwrap();
        // The slot frees despite the panic, so a later job still runs.
        loop {
            let d = done_tx.clone();
            if s.submit(move || d.send(()).unwrap()).is_ok() {
                break;
            }
            std::thread::yield_now();
        }
        done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn bounded_shutdown_names_the_jobs_it_abandons() {
        let s = Scheduler::new(1, 4);
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel();
        let wedged = s
            .submit(move || {
                started_tx.send(()).unwrap();
                block_rx.recv().ok();
            })
            .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let queued = s.submit(|| {}).unwrap();

        let deadline = Instant::now() + Duration::from_millis(50);
        let abandoned = s.shutdown_within(Some(deadline));
        assert!(Instant::now() >= deadline, "shutdown must wait out the deadline first");
        assert_eq!(abandoned, vec![wedged, queued], "both uncollected jobs are named");

        // A later unbounded shutdown returns immediately instead of
        // blocking on the disowned job.
        s.shutdown();
        block_tx.send(()).ok();
    }

    #[test]
    fn bounded_shutdown_with_time_to_spare_abandons_nothing() {
        let s = Scheduler::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let c = Arc::clone(&counter);
            s.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let abandoned = s.shutdown_within(Some(Instant::now() + Duration::from_secs(10)));
        assert!(abandoned.is_empty());
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }
}
