//! Experiment scheduler: a fixed pool of plain worker threads behind a
//! bounded job queue.
//!
//! DESIGN §7 rules out async runtimes — experiment runs are CPU-bound, so
//! the pool is sized to cores and the queue is the only elasticity. When
//! the queue is full, [`Scheduler::submit`] fails fast and the HTTP layer
//! sheds the request with a 503 instead of letting latency grow unbounded.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`Scheduler::submit`] when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated;

/// A fixed-size worker pool with a bounded queue.
pub struct Scheduler {
    // `None` after shutdown; dropping the sender is what stops the workers.
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns `threads` workers sharing a queue of `queue_capacity` slots.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        assert!(threads > 0, "scheduler needs at least one worker");
        let (tx, rx) = sync_channel::<Job>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("dial-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { tx: Mutex::new(Some(tx)), workers: Mutex::new(workers) }
    }

    /// Enqueues a job, failing fast with [`Saturated`] when every queue
    /// slot is taken and no worker is free to hand off to.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), Saturated> {
        let guard = self.tx.lock().expect("scheduler sender lock");
        let Some(tx) = guard.as_ref() else {
            return Err(Saturated); // shutting down: shed everything
        };
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => Err(Saturated),
        }
    }

    /// Drains the queue and joins every worker. In-flight jobs finish;
    /// queued jobs still run; new submissions are shed.
    pub fn shutdown(&self) {
        // Dropping the sender closes the channel; workers exit when the
        // queue is empty.
        self.tx.lock().expect("scheduler sender lock").take();
        let workers = std::mem::take(&mut *self.workers.lock().expect("scheduler worker lock"));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while receiving, not while running the job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_submitted_jobs_on_workers() {
        let s = Scheduler::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            // A full queue here is fine — retry until accepted.
            loop {
                let c = Arc::clone(&counter);
                let d = done.clone();
                if s.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    d.send(()).unwrap();
                })
                .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        for _ in 0..32 {
            done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn saturation_sheds_instead_of_blocking() {
        let s = Scheduler::new(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel();
        // Occupy the single worker...
        s.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        // ...fill the single queue slot...
        s.submit(|| {}).unwrap();
        // ...and the next job must shed.
        assert_eq!(s.submit(|| {}), Err(Saturated));
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_finishes_queued_work() {
        let s = Scheduler::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            loop {
                let c = Arc::clone(&counter);
                if s.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        s.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        // Post-shutdown submissions shed.
        assert_eq!(s.submit(|| {}), Err(Saturated));
    }
}
