//! Snapshot store: loads a dataset + ledger snapshot from disk, rebuilds
//! the secondary indexes, and pins the content fingerprint that keys every
//! downstream cache entry.

use dial_chain::Ledger;
use dial_core::experiments::ExperimentContext;
use dial_model::Dataset;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The on-disk snapshot layout shared with `dial generate`.
#[derive(Serialize, Deserialize)]
pub struct Snapshot {
    /// The marketplace dataset.
    pub dataset: Dataset,
    /// The simulated blockchain.
    pub ledger: Ledger,
}

/// Headline counts surfaced by `/summary`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Users in the dataset.
    pub users: usize,
    /// Contracts in the dataset.
    pub contracts: usize,
    /// Forum threads in the dataset.
    pub threads: usize,
    /// Forum posts in the dataset.
    pub posts: usize,
    /// Transactions on the simulated chain.
    pub chain_txs: usize,
}

/// An immutable, fingerprinted snapshot ready for concurrent analysis.
///
/// The wrapped [`ExperimentContext`] is shared by reference across worker
/// threads; its latent-class memoisation (`OnceLock`) makes the expensive
/// LTM fit once per snapshot regardless of how many experiments need it.
pub struct SnapshotStore {
    ctx: Arc<ExperimentContext>,
    fingerprint: String,
    summary: StoreSummary,
}

impl SnapshotStore {
    /// Loads a snapshot file written by `dial generate`.
    pub fn load(path: &str, seed: u64, lca_classes: usize) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let snap: Snapshot =
            serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))?;
        Ok(Self::from_parts(snap.dataset.reindex(), snap.ledger.reindex(), seed, lca_classes))
    }

    /// Builds a store from in-memory parts (used by tests and benches).
    pub fn from_parts(dataset: Dataset, ledger: Ledger, seed: u64, lca_classes: usize) -> Self {
        // The fingerprint pairs both content hashes: experiments read the
        // ledger too, so a dataset-only key would alias distinct snapshots.
        let fingerprint = format!("{:016x}-{:016x}", dataset.fingerprint(), ledger.fingerprint());
        let summary = StoreSummary {
            users: dataset.users().len(),
            contracts: dataset.contracts().len(),
            threads: dataset.threads().len(),
            posts: dataset.posts().len(),
            chain_txs: ledger.len(),
        };
        let ctx = Arc::new(ExperimentContext::new(dataset, ledger, seed, lca_classes));
        Self { ctx, fingerprint, summary }
    }

    /// The shared analysis context.
    pub fn context(&self) -> Arc<ExperimentContext> {
        Arc::clone(&self.ctx)
    }

    /// The snapshot's stable content fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Headline counts for `/summary`.
    pub fn summary(&self) -> &StoreSummary {
        &self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_sim::SimConfig;

    #[test]
    fn load_round_trips_through_disk_and_keeps_the_fingerprint() {
        let out = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let in_memory = SnapshotStore::from_parts(out.dataset, out.ledger, 3, 4);

        let out = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let snap = Snapshot { dataset: out.dataset, ledger: out.ledger };
        let path = std::env::temp_dir().join("dial-serve-store-test.json");
        std::fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let loaded = SnapshotStore::load(path.to_str().unwrap(), 3, 4).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.fingerprint(), in_memory.fingerprint());
        assert_eq!(loaded.summary().contracts, in_memory.summary().contracts);
        // The reloaded context answers queries (indexes were rebuilt).
        let ctx = loaded.context();
        assert!(!ctx.dataset.contracts().is_empty());
    }

    #[test]
    fn different_seeds_fingerprint_differently() {
        let a = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let b = SimConfig::paper_default().with_seed(4).with_scale(0.01).simulate_full();
        let fa = SnapshotStore::from_parts(a.dataset, a.ledger, 0, 4);
        let fb = SnapshotStore::from_parts(b.dataset, b.ledger, 0, 4);
        assert_ne!(fa.fingerprint(), fb.fingerprint());
    }
}
