//! Snapshot store: loads a dataset + ledger snapshot from disk, rebuilds
//! the secondary indexes, and pins the content fingerprint that keys every
//! downstream cache entry.

use dial_chain::Ledger;
use dial_core::experiments::ExperimentContext;
use dial_model::Dataset;
use dial_time::{Date, Era};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The on-disk snapshot layout shared with `dial generate`.
#[derive(Serialize, Deserialize)]
pub struct Snapshot {
    /// The marketplace dataset.
    pub dataset: Dataset,
    /// The simulated blockchain.
    pub ledger: Ledger,
}

/// Headline counts surfaced by `/summary`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Users in the dataset.
    pub users: usize,
    /// Contracts in the dataset.
    pub contracts: usize,
    /// Forum threads in the dataset.
    pub threads: usize,
    /// Forum posts in the dataset.
    pub posts: usize,
    /// Transactions on the simulated chain.
    pub chain_txs: usize,
}

/// An immutable, fingerprinted snapshot ready for concurrent analysis.
///
/// The wrapped [`ExperimentContext`] is shared by reference across worker
/// threads; its latent-class memoisation (`OnceLock`) makes the expensive
/// LTM fit once per snapshot regardless of how many experiments need it.
pub struct SnapshotStore {
    ctx: Arc<ExperimentContext>,
    fingerprint: String,
    era_fingerprints: [u64; 3],
    summary: StoreSummary,
}

impl SnapshotStore {
    /// Loads a snapshot file written by `dial generate`.
    pub fn load(path: &str, seed: u64, lca_classes: usize) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let snap: Snapshot =
            serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))?;
        Ok(Self::from_parts(snap.dataset.reindex(), snap.ledger.reindex(), seed, lca_classes))
    }

    /// Builds a store from in-memory parts (used by tests and benches).
    pub fn from_parts(dataset: Dataset, ledger: Ledger, seed: u64, lca_classes: usize) -> Self {
        // The fingerprint pairs both content hashes: experiments read the
        // ledger too, so a dataset-only key would alias distinct snapshots.
        let fingerprint = format!("{:016x}-{:016x}", dataset.fingerprint(), ledger.fingerprint());
        let era_fingerprints = era_fingerprints(&dataset, &ledger);
        let summary = StoreSummary {
            users: dataset.users().len(),
            contracts: dataset.contracts().len(),
            threads: dataset.threads().len(),
            posts: dataset.posts().len(),
            chain_txs: ledger.len(),
        };
        let ctx = Arc::new(ExperimentContext::new(dataset, ledger, seed, lca_classes));
        Self { ctx, fingerprint, era_fingerprints, summary }
    }

    /// The shared analysis context.
    pub fn context(&self) -> Arc<ExperimentContext> {
        Arc::clone(&self.ctx)
    }

    /// The snapshot's stable content fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// One era's content fingerprint — the cache key for era-scoped
    /// experiments. Only ingests that change this era's slice move it,
    /// which is what lets warm era-scoped entries survive unrelated
    /// seals.
    pub fn era_fingerprint(&self, era: Era) -> u64 {
        let i = Era::ALL.iter().position(|e| *e == era).unwrap();
        self.era_fingerprints[i]
    }

    /// Headline counts for `/summary`.
    pub fn summary(&self) -> &StoreSummary {
        &self.summary
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The era whose slice an entity dated `date` belongs to; dates outside
/// the study eras clamp to the nearest one so the partition is total.
fn era_of_clamped(date: Date) -> Era {
    if date <= Era::SetUp.end() {
        return Era::SetUp;
    }
    if date >= Era::Covid19.start() {
        return Era::Covid19;
    }
    Era::of(date).unwrap_or(Era::Stable)
}

/// Per-era content fingerprints: each entity's canonical JSON folded
/// into the hash of the era its own timestamp falls in, in id order.
///
/// Because both the batch loader and the stream engine hold entities in
/// id order with identical serialisations, a store built from a sealed
/// stream prefix and one built from the equivalent batch dataset get
/// identical era fingerprints — and a seal that only appends month-M
/// entities only moves the hashes of the eras those entities date to.
fn era_fingerprints(dataset: &Dataset, ledger: &Ledger) -> [u64; 3] {
    let mut hashes = [FNV_OFFSET; 3];
    let mut fold = |date: Date, json: String| {
        let era = era_of_clamped(date);
        let i = Era::ALL.iter().position(|e| *e == era).unwrap();
        hashes[i] = fnv1a_fold(hashes[i], json.as_bytes());
    };
    for u in dataset.users() {
        fold(u.joined, serde_json::to_string(u).expect("users serialise"));
    }
    for t in dataset.threads() {
        fold(t.created.date(), serde_json::to_string(t).expect("threads serialise"));
    }
    for c in dataset.contracts() {
        fold(c.created.date(), serde_json::to_string(c).expect("contracts serialise"));
    }
    for p in dataset.posts() {
        fold(p.at.date(), serde_json::to_string(p).expect("posts serialise"));
    }
    for tx in ledger.iter() {
        fold(tx.confirmed_at.date(), serde_json::to_string(tx).expect("txs serialise"));
    }
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_sim::SimConfig;

    #[test]
    fn load_round_trips_through_disk_and_keeps_the_fingerprint() {
        let out = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let in_memory = SnapshotStore::from_parts(out.dataset, out.ledger, 3, 4);

        let out = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let snap = Snapshot { dataset: out.dataset, ledger: out.ledger };
        let path = std::env::temp_dir().join("dial-serve-store-test.json");
        std::fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let loaded = SnapshotStore::load(path.to_str().unwrap(), 3, 4).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.fingerprint(), in_memory.fingerprint());
        assert_eq!(loaded.summary().contracts, in_memory.summary().contracts);
        // The reloaded context answers queries (indexes were rebuilt).
        let ctx = loaded.context();
        assert!(!ctx.dataset.contracts().is_empty());
    }

    #[test]
    fn different_seeds_fingerprint_differently() {
        let a = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let b = SimConfig::paper_default().with_seed(4).with_scale(0.01).simulate_full();
        let fa = SnapshotStore::from_parts(a.dataset, a.ledger, 0, 4);
        let fb = SnapshotStore::from_parts(b.dataset, b.ledger, 0, 4);
        assert_ne!(fa.fingerprint(), fb.fingerprint());
    }

    #[test]
    fn era_fingerprints_are_stable_distinct_and_delta_sensitive() {
        let out = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        let fps = era_fingerprints(&out.dataset, &out.ledger);
        // Each era actually has content, and the slices differ.
        assert!(fps.iter().all(|f| *f != FNV_OFFSET));
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[1], fps[2]);

        // Rebuilding from the same parts is deterministic.
        let again = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate_full();
        assert_eq!(fps, era_fingerprints(&again.dataset, &again.ledger));

        // Dropping the last post (timestamped in the final era) moves the
        // COVID-19 hash only: the earlier eras' slices are untouched.
        let truncated = again;
        let last = truncated.dataset.posts().last().cloned().unwrap();
        assert_eq!(era_of_clamped(last.at.date()), Era::Covid19);
        let short = Dataset::new(
            truncated.dataset.users().to_vec(),
            truncated.dataset.contracts().to_vec(),
            truncated.dataset.threads().to_vec(),
            truncated.dataset.posts()[..truncated.dataset.posts().len() - 1].to_vec(),
        );
        let cut = era_fingerprints(&short, &truncated.ledger);
        assert_eq!(cut[0], fps[0]);
        assert_eq!(cut[1], fps[1]);
        assert_ne!(cut[2], fps[2]);
    }
}
