//! Result cache: completed experiment responses keyed by snapshot
//! fingerprint, experiment id, and analysis parameters.
//!
//! Reads vastly outnumber writes (every repeat query is a read), so the
//! map sits behind an `RwLock`. Entries are `Arc<String>` so a hit hands
//! back a shared body without copying the (potentially large) JSON.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Identity of one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot content fingerprint (see `SnapshotStore::fingerprint`).
    pub snapshot: String,
    /// Experiment id, e.g. `"table1"`.
    pub experiment: String,
    /// Canonical analysis parameters, e.g. `"seed=53665&classes=12"`.
    pub params: String,
}

/// A concurrent map from [`CacheKey`] to a finished response body.
#[derive(Default)]
pub struct ResultCache {
    map: RwLock<HashMap<CacheKey, Arc<String>>>,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached body for `key`, if present.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
        self.map.read().expect("cache lock").get(key).cloned()
    }

    /// Stores `body` under `key`, returning the shared handle.
    ///
    /// If two workers raced on the same miss, the first insert wins and
    /// both callers end up handing out the same body (the results are
    /// deterministic, so either copy is correct).
    pub fn insert(&self, key: CacheKey, body: String) -> Arc<String> {
        // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
        let mut map = self.map.write().expect("cache lock");
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(body)))
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        // lint:allow(unwrap-in-serve): lock poisoning means a sibling already panicked; propagating is the designed failure mode
        self.map.read().expect("cache lock").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(exp: &str) -> CacheKey {
        CacheKey {
            snapshot: "abc-def".into(),
            experiment: exp.into(),
            params: "seed=1&classes=12".into(),
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new();
        assert!(cache.get(&key("table1")).is_none());
        cache.insert(key("table1"), "{\"x\":1}".into());
        assert_eq!(cache.get(&key("table1")).unwrap().as_str(), "{\"x\":1}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_params_are_distinct_entries() {
        let cache = ResultCache::new();
        cache.insert(key("table1"), "a".into());
        let mut other = key("table1");
        other.params = "seed=2&classes=12".into();
        assert!(cache.get(&other).is_none());
        cache.insert(other, "b".into());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn racing_inserts_converge_on_one_body() {
        let cache = ResultCache::new();
        let first = cache.insert(key("fig1"), "first".into());
        let second = cache.insert(key("fig1"), "second".into());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(second.as_str(), "first");
    }
}
