//! End-to-end tests for the dial-serve HTTP server: real sockets on an
//! ephemeral port, a plain `TcpStream` client, no mocks.

use dial_serve::{Engine, ServeConfig, ServeExperiment, Server, SnapshotStore};
use dial_sim::SimConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Minimal HTTP/1.1 GET returning `(status, headers, body)`; the server
/// always closes the connection, so read-to-EOF yields the whole response.
fn http_get_full(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http_get_full(addr, path);
    (status, body)
}

fn test_store() -> SnapshotStore {
    let out = SimConfig::paper_default().with_seed(7).with_scale(0.01).simulate_full();
    SnapshotStore::from_parts(out.dataset, out.ledger, 7, 4)
}

fn start_server(engine: Engine) -> Server {
    let cfg = ServeConfig { port: 0, ..ServeConfig::default() };
    Server::start(Arc::new(engine), &cfg).expect("bind ephemeral port")
}

/// Asserts `body` is the uniform error envelope and returns its parts.
fn parse_envelope(body: &str) -> (String, serde_json::Value) {
    let v: serde_json::Value = serde_json::from_str(body)
        .unwrap_or_else(|e| panic!("error body is not JSON ({e:?}): {body}"));
    let err = v.get("error").as_object().unwrap_or_else(|| panic!("no error object: {body}"));
    let code = err["code"].as_str().expect("code is a string").to_string();
    assert!(err["message"].as_str().is_some(), "message missing: {body}");
    (code, err["detail"].clone())
}

#[test]
fn analyze_twice_is_identical_and_second_call_hits_the_cache() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    let (status_a, body_a) = http_get(addr, "/v1/analyze/table1");
    let (status_b, body_b) = http_get(addr, "/v1/analyze/table1");
    assert_eq!(status_a, 200);
    assert_eq!(status_b, 200);
    assert_eq!(body_a, body_b, "cached response must be byte-identical");

    let (status_m, metrics) = http_get(addr, "/v1/metrics");
    assert_eq!(status_m, 200);
    let m: serde_json::Value = serde_json::from_str(&metrics).expect("metrics is JSON");
    assert_eq!(m.get("cache_misses").as_u64(), Some(1));
    assert_eq!(m.get("cache_hits").as_u64(), Some(1));

    server.shutdown();
}

#[test]
fn every_endpoint_answers_valid_json() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    for path in ["/v1/healthz", "/v1/experiments", "/v1/summary", "/v1/metrics", "/v1/analyze/fig1"]
    {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, 200, "{path} failed: {body}");
        serde_json::from_str::<serde_json::Value>(&body)
            .unwrap_or_else(|e| panic!("{path} returned invalid JSON ({e:?}): {body}"));
    }

    // Unknown experiment: enveloped 404 with the valid ids in the detail.
    let (status, body) = http_get(addr, "/v1/analyze/table99");
    assert_eq!(status, 404);
    let (code, detail) = parse_envelope(&body);
    assert_eq!(code, "unknown_experiment");
    let valid = detail.get("valid").as_array().expect("detail.valid is an array");
    assert!(valid.iter().any(|v| v.as_str() == Some("table1")), "{body}");

    // Unknown path and unsupported method, both enveloped.
    let (status, body) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    assert_eq!(parse_envelope(&body).0, "unknown_endpoint");
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "POST should 405, got {raw:?}");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or_default();
    assert_eq!(parse_envelope(body).0, "method_not_allowed");

    server.shutdown();
}

#[test]
fn legacy_paths_redirect_permanently_to_v1() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    for (old, new) in [
        ("/healthz", "/v1/healthz"),
        ("/experiments", "/v1/experiments"),
        ("/summary", "/v1/summary"),
        ("/metrics", "/v1/metrics"),
        ("/analyze/table1", "/v1/analyze/table1"),
        ("/analyze?ids=table1,fig1", "/v1/analyze?ids=table1,fig1"),
    ] {
        let (status, head, body) = http_get_full(addr, old);
        assert_eq!(status, 308, "{old} should 308: {body}");
        let location = head
            .lines()
            .find_map(|l| l.strip_prefix("Location: "))
            .unwrap_or_else(|| panic!("{old}: no Location header in {head}"));
        assert_eq!(location, new);
        let (code, detail) = parse_envelope(&body);
        assert_eq!(code, "moved_permanently");
        assert_eq!(detail.get("location").as_str(), Some(new));

        // Following the redirect reaches a working endpoint.
        let (status, body) = http_get(addr, location);
        assert_eq!(status, 200, "{location} after redirect failed: {body}");
    }

    server.shutdown();
}

#[test]
fn batch_analyze_returns_every_result_keyed_by_id() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 4, 32);
    let server = start_server(engine);
    let addr = server.addr();

    let (status, body) = http_get(addr, "/v1/analyze?ids=table1,fig1,table1");
    assert_eq!(status, 200, "batch failed: {body}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("batch body is JSON");
    let results = v.get("results").as_object().expect("results object");
    assert_eq!(results.len(), 2, "duplicate ids collapse: {body}");
    assert!(v.get("errors").as_object().is_some_and(|e| e.is_empty()), "{body}");

    // Each batch entry is byte-identical to its single-experiment body.
    for id in ["table1", "fig1"] {
        let (status, single) = http_get(addr, &format!("/v1/analyze/{id}"));
        assert_eq!(status, 200);
        let single_v: serde_json::Value = serde_json::from_str(&single).unwrap();
        assert_eq!(results[id], single_v, "batch and single bodies disagree for {id}");
    }

    // Missing or empty ids: enveloped 400.
    for path in ["/v1/analyze", "/v1/analyze?ids=", "/v1/analyze?ids=,,"] {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, 400, "{path}: {body}");
        assert_eq!(parse_envelope(&body).0, "missing_ids");
    }

    server.shutdown();
}

#[test]
fn batch_analyze_rejects_whole_request_on_unknown_id() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 4, 32);
    let server = start_server(engine);
    let addr = server.addr();

    let (status, body) = http_get(addr, "/v1/analyze?ids=table1,definitely-not-real");
    assert_eq!(status, 404, "unknown id must fail the whole batch: {body}");
    let (code, detail) = parse_envelope(&body);
    assert_eq!(code, "unknown_experiment");
    let valid = detail.get("valid").as_array().expect("valid ids listed");
    assert!(valid.iter().any(|v| v.as_str() == Some("table1")), "{body}");

    server.shutdown();
}

#[test]
fn eight_parallel_clients_get_consistent_answers() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 4, 32);
    let server = start_server(engine);
    let addr = server.addr();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                // Half hammer the same experiment, half walk other endpoints.
                let path = if i % 2 == 0 { "/v1/analyze/table2" } else { "/v1/healthz" };
                http_get(addr, path)
            })
        })
        .collect();
    let results: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let analyze_bodies: Vec<&String> = results
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, (status, body))| {
            assert_eq!(*status, 200);
            body
        })
        .collect();
    // Concurrent misses may each compute, but every answer must agree.
    for body in &analyze_bodies {
        assert_eq!(*body, analyze_bodies[0]);
    }
    for (i, (status, _)) in results.iter().enumerate() {
        assert_eq!(*status, 200, "client {i} failed");
    }

    server.shutdown();
}

/// `(started_count, released)` behind a condvar: experiments park here so
/// the test controls exactly when the running slot frees up.
struct Gate {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Self { state: Mutex::new((0, false)), cv: Condvar::new() }
    }

    fn enter(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 += 1;
        self.cv.notify_all();
        while !st.1 {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn wait_started(&self) {
        let mut st = self.state.lock().unwrap();
        while st.0 < 1 {
            let (next, timeout) = self.cv.wait_timeout(st, Duration::from_secs(10)).unwrap();
            assert!(!timeout.timed_out(), "blocking experiment never started");
            st = next;
        }
    }

    fn release(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

fn blocking_engine(gate: &Arc<Gate>) -> Engine {
    let block = {
        let gate = Arc::clone(gate);
        ServeExperiment {
            id: "block".into(),
            title: "parks until released".into(),
            paper_claim: String::new(),
            scope: dial_serve::EraScope::All,
            run: Arc::new(move |_| {
                gate.enter();
                "{\"blocked\":false}".to_string()
            }),
        }
    };
    // One running slot, zero queue slots: once the slot is busy, every
    // further submission must shed immediately.
    Engine::new(test_store(), vec![block], 1, 0)
}

#[test]
fn saturated_queue_sheds_with_503() {
    let gate = Arc::new(Gate::new());
    let server = start_server(blocking_engine(&gate));
    let addr = server.addr();

    let first = std::thread::spawn(move || http_get(addr, "/v1/analyze/block"));
    gate.wait_started();

    // The slot is parked inside the experiment, so this miss cannot be
    // admitted and the server sheds it with the enveloped 503.
    let (status, body) = http_get(addr, "/v1/analyze/block");
    assert_eq!(status, 503, "expected shed, got {status}: {body}");
    let (code, _) = parse_envelope(&body);
    assert_eq!(code, "saturated");
    assert!(body.contains("saturated"));

    gate.release();
    let (status, body) = first.join().unwrap();
    assert_eq!(status, 200, "parked request should finish: {body}");

    let (_, metrics) = http_get(addr, "/v1/metrics");
    let m: serde_json::Value = serde_json::from_str(&metrics).unwrap();
    assert!(m.get("shed_total").as_u64().unwrap() >= 1);
    assert!(m.get("responses_5xx").as_u64().unwrap() >= 1);

    server.shutdown();
}

#[test]
fn saturated_batch_sheds_whole_request_with_503() {
    let gate = Arc::new(Gate::new());
    let server = start_server(blocking_engine(&gate));
    let addr = server.addr();

    let first = std::thread::spawn(move || http_get(addr, "/v1/analyze/block"));
    gate.wait_started();

    let (status, body) = http_get(addr, "/v1/analyze?ids=block");
    assert_eq!(status, 503, "batch should shed whole: {status}: {body}");
    assert_eq!(parse_envelope(&body).0, "saturated");

    gate.release();
    let (status, _) = first.join().unwrap();
    assert_eq!(status, 200);

    server.shutdown();
}

/// Minimal HTTP/1.1 POST returning `(status, headers, body)`.
fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn start_live_server(max_pending_events: usize) -> Server {
    let engine =
        Engine::new_live(9, 3, dial_serve::registry_experiments(), 2, 16, max_pending_events);
    // Month segments can outgrow the default body cap; raise it the way
    // `dial serve --live` does.
    let cfg = ServeConfig { port: 0, max_body_bytes: 32 * 1024 * 1024, ..ServeConfig::default() };
    Server::start(Arc::new(engine), &cfg).expect("bind ephemeral port")
}

#[test]
fn live_ingest_then_stream_replays_the_story_over_http() {
    let server = start_live_server(1 << 20);
    let addr = server.addr();

    let (status, body) = http_get(addr, "/v1/healthz");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("mode").as_str(), Some("live"));

    let out = SimConfig::paper_default().with_seed(9).with_scale(0.01).simulate_full();
    let segs = dial_stream::segments(&out);
    let (status, _, body) = http_post(addr, "/v1/ingest", &dial_stream::encode_ndjson(&segs[0]));
    assert_eq!(status, 200, "ingest failed: {body}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("ingest report is JSON");
    assert_eq!(v.get("accepted").as_u64(), Some(segs[0].len() as u64));
    assert_eq!(v.get("seals").as_u64(), Some(1));
    assert_eq!(v.get("pending").as_u64(), Some(0));
    let sealed_fp = v.get("snapshot").as_str().expect("snapshot fingerprint").to_string();

    // The healthz fingerprint now names the sealed snapshot.
    let (_, body) = http_get(addr, "/v1/healthz");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("snapshot").as_str(), Some(sealed_fp.as_str()));

    // A late subscriber replays the era + seal frames, then the server
    // ends the stream at ?max=2 with a clean terminal chunk.
    let (status, head, sse) = http_get_full(addr, "/v1/stream?max=2");
    assert_eq!(status, 200, "stream failed: {sse}");
    assert!(head.contains("Content-Type: text/event-stream"), "{head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(sse.contains("event: era"), "missing era frame: {sse}");
    assert!(sse.contains("event: seal"), "missing seal frame: {sse}");
    assert!(sse.contains(&sealed_fp), "seal frame must carry the snapshot fingerprint: {sse}");
    assert!(sse.ends_with("0\r\n\r\n"), "missing terminal chunk: {sse:?}");

    // Analysis serves from the live snapshot like any other.
    let (status, _) = http_get(addr, "/v1/analyze/table1");
    assert_eq!(status, 200);

    server.shutdown();
}

#[test]
fn snapshot_server_answers_409_on_live_endpoints() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    let (status, _, body) = http_post(addr, "/v1/ingest", "{}");
    assert_eq!(status, 409, "{body}");
    assert_eq!(parse_envelope(&body).0, "not_live");

    let (status, _, body) = http_get_full(addr, "/v1/stream");
    assert_eq!(status, 409, "{body}");
    assert_eq!(parse_envelope(&body).0, "not_live");

    server.shutdown();
}

#[test]
fn ingest_guards_length_method_and_backpressure() {
    let server = start_live_server(8);
    let addr = server.addr();

    // No Content-Length: 411.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /v1/ingest HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 411"), "expected 411, got {raw:?}");

    // GET on the ingest path: 405.
    let (status, body) = http_get(addr, "/v1/ingest");
    assert_eq!(status, 405, "{body}");
    assert_eq!(parse_envelope(&body).0, "method_not_allowed");

    // A month-sized batch against an 8-event buffer: 429 + Retry-After.
    let out = SimConfig::paper_default().with_seed(9).with_scale(0.01).simulate_full();
    let segs = dial_stream::segments(&out);
    let (status, head, body) = http_post(addr, "/v1/ingest", &dial_stream::encode_ndjson(&segs[0]));
    assert_eq!(status, 429, "{body}");
    assert_eq!(parse_envelope(&body).0, "ingest_backpressure");
    assert!(head.lines().any(|l| l.starts_with("Retry-After:")), "{head}");

    // Malformed NDJSON: enveloped 400 naming the line.
    let (status, _, body) = http_post(addr, "/v1/ingest", "{\"nope\":1}\n");
    assert_eq!(status, 400, "{body}");
    assert_eq!(parse_envelope(&body).0, "bad_event");

    server.shutdown();
}

#[test]
fn legacy_redirects_preserve_subpaths_and_query_strings() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    // Query strings and subpaths must ride along verbatim — including
    // multi-parameter queries and both at once.
    for (old, new) in [
        ("/analyze/table1?verbose=1", "/v1/analyze/table1?verbose=1"),
        ("/analyze?ids=table1,fig1&x=y", "/v1/analyze?ids=table1,fig1&x=y"),
        ("/metrics?pretty=1", "/v1/metrics?pretty=1"),
    ] {
        let (status, head, body) = http_get_full(addr, old);
        assert_eq!(status, 308, "{old}: {body}");
        let location = head
            .lines()
            .find_map(|l| l.strip_prefix("Location: "))
            .unwrap_or_else(|| panic!("{old}: no Location header in {head}"));
        assert_eq!(location, new, "redirect must preserve the full path and query");
        assert_eq!(parse_envelope(&body).1.get("location").as_str(), Some(new));
    }

    server.shutdown();
}
