//! End-to-end tests for the dial-serve HTTP server: real sockets on an
//! ephemeral port, a plain `TcpStream` client, no mocks.

use dial_serve::{Engine, ServeConfig, ServeExperiment, Server, SnapshotStore};
use dial_sim::SimConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Minimal HTTP/1.1 GET; the server always closes the connection, so
/// read-to-EOF yields the whole response.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn test_store() -> SnapshotStore {
    let out = SimConfig::paper_default().with_seed(7).with_scale(0.01).simulate_full();
    SnapshotStore::from_parts(out.dataset, out.ledger, 7, 4)
}

fn start_server(engine: Engine) -> Server {
    let cfg = ServeConfig { port: 0, ..ServeConfig::default() };
    Server::start(Arc::new(engine), &cfg).expect("bind ephemeral port")
}

#[test]
fn analyze_twice_is_identical_and_second_call_hits_the_cache() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    let (status_a, body_a) = http_get(addr, "/analyze/table1");
    let (status_b, body_b) = http_get(addr, "/analyze/table1");
    assert_eq!(status_a, 200);
    assert_eq!(status_b, 200);
    assert_eq!(body_a, body_b, "cached response must be byte-identical");

    let (status_m, metrics) = http_get(addr, "/metrics");
    assert_eq!(status_m, 200);
    let m: serde_json::Value = serde_json::from_str(&metrics).expect("metrics is JSON");
    assert_eq!(m.get("cache_misses").as_u64(), Some(1));
    assert_eq!(m.get("cache_hits").as_u64(), Some(1));

    server.shutdown();
}

#[test]
fn every_endpoint_answers_valid_json() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 2, 16);
    let server = start_server(engine);
    let addr = server.addr();

    for path in ["/healthz", "/experiments", "/summary", "/metrics", "/analyze/fig1"] {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, 200, "{path} failed: {body}");
        serde_json::from_str::<serde_json::Value>(&body)
            .unwrap_or_else(|e| panic!("{path} returned invalid JSON ({e:?}): {body}"));
    }

    // Unknown experiment: 404 with the valid ids in the payload.
    let (status, body) = http_get(addr, "/analyze/table99");
    assert_eq!(status, 404);
    assert!(body.contains("table1"), "404 body should list valid ids: {body}");

    // Unknown path and unsupported method.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "POST should 405, got {raw:?}");

    server.shutdown();
}

#[test]
fn eight_parallel_clients_get_consistent_answers() {
    let engine = Engine::new(test_store(), dial_serve::registry_experiments(), 4, 32);
    let server = start_server(engine);
    let addr = server.addr();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                // Half hammer the same experiment, half walk other endpoints.
                let path = if i % 2 == 0 { "/analyze/table2" } else { "/healthz" };
                http_get(addr, path)
            })
        })
        .collect();
    let results: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let analyze_bodies: Vec<&String> = results
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, (status, body))| {
            assert_eq!(*status, 200);
            body
        })
        .collect();
    // Concurrent misses may each compute, but every answer must agree.
    for body in &analyze_bodies {
        assert_eq!(*body, analyze_bodies[0]);
    }
    for (i, (status, _)) in results.iter().enumerate() {
        assert_eq!(*status, 200, "client {i} failed");
    }

    server.shutdown();
}

/// `(started_count, released)` behind a condvar: experiments park here so
/// the test controls exactly when the worker frees up.
struct Gate {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Self { state: Mutex::new((0, false)), cv: Condvar::new() }
    }

    fn enter(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 += 1;
        self.cv.notify_all();
        while !st.1 {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn wait_started(&self) {
        let mut st = self.state.lock().unwrap();
        while st.0 < 1 {
            let (next, timeout) = self.cv.wait_timeout(st, Duration::from_secs(10)).unwrap();
            assert!(!timeout.timed_out(), "blocking experiment never started");
            st = next;
        }
    }

    fn release(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

#[test]
fn saturated_queue_sheds_with_503() {
    let gate = Arc::new(Gate::new());
    let block = {
        let gate = Arc::clone(&gate);
        ServeExperiment {
            id: "block".into(),
            title: "parks until released".into(),
            paper_claim: String::new(),
            run: Arc::new(move |_| {
                gate.enter();
                "{\"blocked\":false}".to_string()
            }),
        }
    };
    // One worker, zero queue slots (rendezvous channel): once the worker
    // is busy, every further submission must shed immediately.
    let engine = Engine::new(test_store(), vec![block], 1, 0);
    let server = start_server(engine);
    let addr = server.addr();

    let first = std::thread::spawn(move || http_get(addr, "/analyze/block"));
    gate.wait_started();

    // The worker is parked inside the experiment, so this miss cannot be
    // scheduled and the server sheds it.
    let (status, body) = http_get(addr, "/analyze/block");
    assert_eq!(status, 503, "expected shed, got {status}: {body}");
    assert!(body.contains("saturated"));

    gate.release();
    let (status, body) = first.join().unwrap();
    assert_eq!(status, 200, "parked request should finish: {body}");

    let (_, metrics) = http_get(addr, "/metrics");
    let m: serde_json::Value = serde_json::from_str(&metrics).unwrap();
    assert!(m.get("shed_total").as_u64().unwrap() >= 1);
    assert!(m.get("responses_5xx").as_u64().unwrap() >= 1);

    server.shutdown();
}
