//! Keyword/phrase category matching over normalised token streams.
//!
//! The paper "uses regular expressions to categorise trading activities
//! into manually defined buckets". Those expressions are keyword and phrase
//! patterns; [`Rule`] expresses them directly against normalised tokens,
//! which keeps every bucket definition data-driven and unit-testable.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A single pattern for one category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rule<C> {
    /// Category this rule votes for.
    pub category: C,
    /// The rule fires if ANY of these patterns is present. A pattern is one
    /// or more space-separated tokens; multi-token patterns must appear
    /// consecutively (a phrase).
    pub any_of: Vec<String>,
    /// If non-empty, ALL of these single tokens must additionally be present
    /// somewhere in the text (used to disambiguate, e.g. `exchange` only
    /// counts as currency exchange when a currency is mentioned).
    pub require_all: Vec<String>,
}

impl<C> Rule<C> {
    /// Builds a rule from `any_of` patterns with no extra requirements.
    pub fn any(category: C, any_of: &[&str]) -> Self {
        Self {
            category,
            any_of: any_of.iter().map(|s| s.to_string()).collect(),
            require_all: Vec::new(),
        }
    }

    /// Adds required tokens to the rule.
    pub fn requiring(mut self, all: &[&str]) -> Self {
        self.require_all = all.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// Matches a token stream against a prioritised rule list, producing the set
/// of categories whose rules fire. A text may match several categories — the
/// paper notes e.g. *"buying fortnite account"* is both gaming-related and
/// account/license.
#[derive(Debug, Clone)]
pub struct CategoryMatcher<C> {
    rules: Vec<Rule<C>>,
}

/// True if `pattern` (space-separated tokens) occurs in `tokens`, as a
/// single token or as a consecutive phrase.
fn pattern_matches(tokens: &[String], pattern: &str) -> bool {
    let parts: Vec<&str> = pattern.split_whitespace().collect();
    match parts.len() {
        0 => false,
        1 => tokens.iter().any(|t| t == parts[0]),
        n => tokens.windows(n).any(|w| w.iter().map(String::as_str).eq(parts.iter().copied())),
    }
}

impl<C: Copy + Eq + std::hash::Hash> CategoryMatcher<C> {
    /// Builds a matcher from a rule list.
    pub fn new(rules: Vec<Rule<C>>) -> Self {
        Self { rules }
    }

    /// All categories matched by the token stream, in rule order, without
    /// duplicates.
    pub fn matches(&self, tokens: &[String]) -> Vec<C> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for rule in &self.rules {
            if seen.contains(&rule.category) {
                continue;
            }
            let required_ok = rule.require_all.iter().all(|req| pattern_matches(tokens, req));
            if required_ok && rule.any_of.iter().any(|p| pattern_matches(tokens, p)) {
                seen.insert(rule.category);
                out.push(rule.category);
            }
        }
        out
    }

    /// The rules backing this matcher.
    pub fn rules(&self) -> &[Rule<C>] {
        &self.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Cat {
        A,
        B,
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn single_keyword() {
        let m = CategoryMatcher::new(vec![Rule::any(Cat::A, &["bitcoin"])]);
        assert_eq!(m.matches(&toks("exchange bitcoin now")), vec![Cat::A]);
        assert!(m.matches(&toks("exchange litecoin")).is_empty());
    }

    #[test]
    fn phrase_must_be_consecutive() {
        let m = CategoryMatcher::new(vec![Rule::any(Cat::A, &["social network"])]);
        assert_eq!(m.matches(&toks("big social network boost")), vec![Cat::A]);
        assert!(m.matches(&toks("social media network")).is_empty());
    }

    #[test]
    fn require_all_gates_the_rule() {
        let m =
            CategoryMatcher::new(vec![Rule::any(Cat::A, &["exchange"]).requiring(&["bitcoin"])]);
        assert!(m.matches(&toks("exchange paypal")).is_empty());
        assert_eq!(m.matches(&toks("exchange bitcoin")), vec![Cat::A]);
    }

    #[test]
    fn multiple_categories_no_duplicates() {
        let m = CategoryMatcher::new(vec![
            Rule::any(Cat::A, &["fortnite"]),
            Rule::any(Cat::B, &["account"]),
            Rule::any(Cat::A, &["skin"]),
        ]);
        assert_eq!(m.matches(&toks("fortnite account skin")), vec![Cat::A, Cat::B]);
    }
}
