//! Extraction of quoted trading values and denominations (§4.5).
//!
//! The scanner finds `(amount, denomination)` mentions in raw obligation
//! text: `$100`, `100 usd`, `0.05 btc`, `£20`, `1,000 paypal` (a payment
//! instrument implies its denomination: `50 paypal` is 50 USD via PayPal).
//! Amounts without any denomination are reported with `currency: None`; the
//! value pipeline defaults those to USD, as the paper does.

use dial_fx::Currency;
use serde::{Deserialize, Serialize};

/// One extracted money mention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoneyMention {
    /// The numeric amount as written.
    pub amount: f64,
    /// Denomination, if one could be inferred from a sigil, code or
    /// instrument name adjacent to the amount.
    pub currency: Option<Currency>,
}

/// Payment instruments that imply a USD denomination when used as a unit
/// (e.g. "50 paypal" means fifty US dollars via PayPal).
fn instrument_implies_usd(token: &str) -> bool {
    matches!(
        token,
        "paypal" | "pp" | "cashapp" | "venmo" | "zelle" | "skrill" | "applepay" | "googlepay"
    )
}

fn parse_amount(token: &str) -> Option<f64> {
    if !token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    // Multipliers: "1k" = 1000, "2m" = 2_000_000.
    let (num_part, mult) = match token.strip_suffix('k') {
        Some(rest) => (rest, 1_000.0),
        None => match token.strip_suffix('m') {
            Some(rest) => (rest, 1_000_000.0),
            None => (token, 1.0),
        },
    };
    let cleaned: String = num_part.chars().filter(|c| *c != ',').collect();
    let value: f64 = cleaned.parse().ok()?;
    if value.is_finite() {
        Some(value * mult)
    } else {
        None
    }
}

fn currency_of_token(token: &str) -> Option<Currency> {
    if instrument_implies_usd(token) {
        return Some(Currency::Usd);
    }
    Currency::from_code(token)
}

/// Scans raw text for money mentions.
///
/// Recognised shapes over the token stream (tokens as produced by
/// [`crate::tokenize`], which keeps `$`/`£`/`€` as standalone tokens and
/// `1,000.50` as one token):
///
/// * `<sigil> <amount>` — `$ 100`;
/// * `<amount> <currency-or-instrument>` — `100 usd`, `0.05 btc`, `50 paypal`;
/// * `<currency> <amount>` — `btc 0.05`;
/// * bare `<amount>` — reported with no denomination.
pub fn scan_money(text: &str) -> Vec<MoneyMention> {
    let tokens = crate::token::tokenize(text);
    let mut out = Vec::new();
    let mut consumed = vec![false; tokens.len()];

    for i in 0..tokens.len() {
        if consumed[i] {
            continue;
        }
        let tok = tokens[i].as_str();

        // Sigil followed by amount.
        let sigil_currency = match tok {
            "$" => Some(Currency::Usd),
            "£" => Some(Currency::Gbp),
            "€" => Some(Currency::Eur),
            _ => None,
        };
        if let Some(cur) = sigil_currency {
            if let Some(amount) = tokens.get(i + 1).and_then(|t| parse_amount(t)) {
                out.push(MoneyMention { amount, currency: Some(cur) });
                consumed[i] = true;
                consumed[i + 1] = true;
                // A trailing code after a sigil amount ("$100 usd") is part
                // of the same mention.
                if let Some(next) = tokens.get(i + 2) {
                    if currency_of_token(next) == Some(cur) {
                        consumed[i + 2] = true;
                    }
                }
            }
            continue;
        }

        if let Some(amount) = parse_amount(tok) {
            // Amount followed by a currency/instrument.
            if let Some(cur) = tokens.get(i + 1).and_then(|t| currency_of_token(t)) {
                out.push(MoneyMention { amount, currency: Some(cur) });
                consumed[i] = true;
                consumed[i + 1] = true;
                continue;
            }
            // Currency preceding the amount ("btc 0.05") — only if that
            // token wasn't already consumed by an earlier mention.
            if i > 0 && !consumed[i - 1] {
                if let Some(cur) = currency_of_token(&tokens[i - 1]) {
                    out.push(MoneyMention { amount, currency: Some(cur) });
                    consumed[i - 1] = true;
                    consumed[i] = true;
                    continue;
                }
            }
            out.push(MoneyMention { amount, currency: None });
            consumed[i] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(text: &str) -> MoneyMention {
        let m = scan_money(text);
        assert_eq!(m.len(), 1, "expected exactly one mention in {text:?}: {m:?}");
        m[0]
    }

    #[test]
    fn dollar_sigil() {
        assert_eq!(one("$100"), MoneyMention { amount: 100.0, currency: Some(Currency::Usd) });
        assert_eq!(one("i pay $1,250 today").amount, 1250.0);
    }

    #[test]
    fn pound_and_euro_sigils() {
        assert_eq!(one("£20").currency, Some(Currency::Gbp));
        assert_eq!(one("€15").currency, Some(Currency::Eur));
    }

    #[test]
    fn amount_then_code() {
        assert_eq!(one("100 usd"), MoneyMention { amount: 100.0, currency: Some(Currency::Usd) });
        assert_eq!(one("0.05 btc"), MoneyMention { amount: 0.05, currency: Some(Currency::Btc) });
    }

    #[test]
    fn instrument_implies_usd() {
        assert_eq!(one("50 paypal"), MoneyMention { amount: 50.0, currency: Some(Currency::Usd) });
        assert_eq!(one("75 cashapp").currency, Some(Currency::Usd));
    }

    #[test]
    fn code_then_amount() {
        assert_eq!(one("btc 0.1"), MoneyMention { amount: 0.1, currency: Some(Currency::Btc) });
    }

    #[test]
    fn bare_amount_has_no_currency() {
        assert_eq!(one("about 300 total"), MoneyMention { amount: 300.0, currency: None });
    }

    #[test]
    fn k_and_m_multipliers() {
        assert_eq!(one("500k bytes").amount, 500_000.0);
        assert_eq!(one("1.5k usd").amount, 1500.0);
    }

    #[test]
    fn sigil_amount_with_redundant_code() {
        let m = scan_money("$100 usd");
        assert_eq!(m, vec![MoneyMention { amount: 100.0, currency: Some(Currency::Usd) }]);
    }

    #[test]
    fn multiple_mentions_both_sides() {
        let m = scan_money("exchange $50 paypal for 0.01 btc");
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], MoneyMention { amount: 50.0, currency: Some(Currency::Usd) });
        assert_eq!(m[1], MoneyMention { amount: 0.01, currency: Some(Currency::Btc) });
    }

    #[test]
    fn no_numbers_no_mentions() {
        assert!(scan_money("selling my soul").is_empty());
    }
}
