//! The manually defined category buckets (trading activities and payment
//! methods) and their matching rules.
//!
//! Categories follow Tables 3–5 of the paper: some buckets are drawn from
//! Motoyama et al. (2011), the rest were added from goods observed in the
//! data. Rules operate on *normalised* tokens (see [`crate::Normalizer`]),
//! so they are written in canonical vocabulary (`bitcoin` not `btc`,
//! `account` not `accs`, `giftcard` not `gift card`).

use crate::matcher::{CategoryMatcher, Rule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Trading-activity buckets of Table 3 (plus the uncategorised bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TradeCategory {
    /// Currency-for-currency swaps (the dominant activity, ~75%).
    CurrencyExchange,
    /// One-sided money transfers and payment services.
    Payments,
    /// Gift cards, coupons and rewards.
    Giftcard,
    /// Accounts and software licenses.
    AccountsLicenses,
    /// Game items, accounts, boosts and in-game currency.
    GamingRelated,
    /// Virtual HACK FORUMS products: bytes, vouch copies, upgrades.
    HackforumsRelated,
    /// Design, illustration and video editing.
    Multimedia,
    /// Hacking services and programming work.
    HackingProgramming,
    /// Followers, likes, views and other social boosts.
    SocialNetworkBoost,
    /// Tutorials, guides, e-books and methods.
    TutorialsGuides,
    /// Automated bots, tools and software.
    ToolsBotsSoftware,
    /// Advertising and promotion services.
    Marketing,
    /// eWhoring packs and related materials.
    Ewhoring,
    /// Physical delivery and shipping services.
    DeliveryShipping,
    /// Homework, essays and dissertations.
    AcademicHelp,
    /// Contests, awards and giveaways.
    ContestAward,
    /// Description too short or ambiguous to categorise.
    Uncategorized,
}

impl TradeCategory {
    /// All categories, in the paper's reporting order.
    pub const ALL: [TradeCategory; 17] = [
        TradeCategory::CurrencyExchange,
        TradeCategory::Payments,
        TradeCategory::Giftcard,
        TradeCategory::AccountsLicenses,
        TradeCategory::GamingRelated,
        TradeCategory::HackforumsRelated,
        TradeCategory::Multimedia,
        TradeCategory::HackingProgramming,
        TradeCategory::SocialNetworkBoost,
        TradeCategory::TutorialsGuides,
        TradeCategory::ToolsBotsSoftware,
        TradeCategory::Marketing,
        TradeCategory::Ewhoring,
        TradeCategory::DeliveryShipping,
        TradeCategory::AcademicHelp,
        TradeCategory::ContestAward,
        TradeCategory::Uncategorized,
    ];

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            TradeCategory::CurrencyExchange => "currency exchange",
            TradeCategory::Payments => "payments",
            TradeCategory::Giftcard => "giftcard/coupon/reward",
            TradeCategory::AccountsLicenses => "accounts/licenses",
            TradeCategory::GamingRelated => "gaming-related",
            TradeCategory::HackforumsRelated => "hackforums-related",
            TradeCategory::Multimedia => "multimedia",
            TradeCategory::HackingProgramming => "hacking/programming",
            TradeCategory::SocialNetworkBoost => "social network boost",
            TradeCategory::TutorialsGuides => "tutorials/guides",
            TradeCategory::ToolsBotsSoftware => "tools/bots/software",
            TradeCategory::Marketing => "marketing",
            TradeCategory::Ewhoring => "ewhoring",
            TradeCategory::DeliveryShipping => "delivery/shipping",
            TradeCategory::AcademicHelp => "academic help",
            TradeCategory::ContestAward => "contest/award",
            TradeCategory::Uncategorized => "uncategorized",
        }
    }
}

impl fmt::Display for TradeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Payment methods of Tables 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PaymentMethod {
    /// Bitcoin — the preferred method by value and count.
    Bitcoin,
    /// PayPal.
    PayPal,
    /// Amazon gift cards, an intermediate currency at scale.
    AmazonGiftcards,
    /// Cash App.
    Cashapp,
    /// Plain USD (bank transfer, cash, unspecified dollars).
    Usd,
    /// Ethereum.
    Ethereum,
    /// Venmo.
    Venmo,
    /// Fortnite V-Bucks.
    VBucks,
    /// Zelle.
    Zelle,
    /// Bitcoin Cash.
    BitcoinCash,
    /// Apple Pay / Google Pay.
    AppleGooglePay,
    /// Litecoin.
    Litecoin,
    /// Monero.
    Monero,
    /// Skrill.
    Skrill,
}

impl PaymentMethod {
    /// All methods, in the paper's reporting order.
    pub const ALL: [PaymentMethod; 14] = [
        PaymentMethod::Bitcoin,
        PaymentMethod::PayPal,
        PaymentMethod::AmazonGiftcards,
        PaymentMethod::Cashapp,
        PaymentMethod::Usd,
        PaymentMethod::Ethereum,
        PaymentMethod::Venmo,
        PaymentMethod::VBucks,
        PaymentMethod::Zelle,
        PaymentMethod::BitcoinCash,
        PaymentMethod::AppleGooglePay,
        PaymentMethod::Litecoin,
        PaymentMethod::Monero,
        PaymentMethod::Skrill,
    ];

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            PaymentMethod::Bitcoin => "Bitcoin",
            PaymentMethod::PayPal => "PayPal",
            PaymentMethod::AmazonGiftcards => "Amazon Giftcards",
            PaymentMethod::Cashapp => "Cashapp",
            PaymentMethod::Usd => "USD",
            PaymentMethod::Ethereum => "Ethereum",
            PaymentMethod::Venmo => "Venmo",
            PaymentMethod::VBucks => "V-bucks",
            PaymentMethod::Zelle => "Zelle",
            PaymentMethod::BitcoinCash => "Bitcoin Cash",
            PaymentMethod::AppleGooglePay => "Apple/Google Pay",
            PaymentMethod::Litecoin => "Litecoin",
            PaymentMethod::Monero => "Monero",
            PaymentMethod::Skrill => "Skrill",
        }
    }
}

impl fmt::Display for PaymentMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Canonical tokens that denote a currency/payment instrument; used to gate
/// the `exchange`/`swap` patterns of the currency-exchange bucket.
const CURRENCY_TOKENS: &[&str] = &[
    "bitcoin",
    "paypal",
    "ethereum",
    "bitcoincash",
    "litecoin",
    "monero",
    "cashapp",
    "venmo",
    "zelle",
    "usd",
    "giftcard",
    "vbucks",
    "skrill",
    "crypto",
];

/// The trading-activity matcher (Table 3 buckets).
pub fn activity_lexicon() -> CategoryMatcher<TradeCategory> {
    use TradeCategory::*;
    let mut rules = Vec::new();

    // Currency exchange: explicit exchange verbs gated on a currency token,
    // or canonical "X for Y" currency pairs.
    for cur in CURRENCY_TOKENS {
        rules.push(
            Rule::any(CurrencyExchange, &["exchange", "swap", "convert", "trade"])
                .requiring(&[cur]),
        );
    }
    rules.push(Rule::any(
        CurrencyExchange,
        &[
            "bitcoin for paypal",
            "paypal for bitcoin",
            "bitcoin for cashapp",
            "cashapp for bitcoin",
            "ethereum for bitcoin",
            "bitcoin for ethereum",
            "paypal for giftcard",
            "giftcard for bitcoin",
            "bitcoin for giftcard",
            "paypal for cashapp",
            "paypal for applepay",
            "currency exchange",
        ],
    ));
    // "Payments" means money-transfer *services*, not the paying leg of an
    // ordinary sale — hence service-like phrases rather than bare verbs.
    rules.push(Rule::any(
        Payments,
        &[
            "money transfer",
            "payment service",
            "transfer service",
            "invoice",
            "bill payment",
            "payout service",
            "balance transfer",
        ],
    ));
    rules.push(Rule::any(
        Giftcard,
        &["giftcard", "coupon", "voucher code", "reward", "amazon giftcard"],
    ));
    rules.push(Rule::any(
        AccountsLicenses,
        &["account", "license", "key", "serial", "subscription", "upgrade code"],
    ));
    rules.push(Rule::any(
        GamingRelated,
        &[
            "fortnite",
            "minecraft",
            "steam",
            "csgo",
            "league",
            "runescape",
            "skin",
            "vbucks",
            "gaming",
            "game",
            "ingame",
            "osrs",
            "gold",
            "coin",
        ],
    ));
    rules.push(Rule::any(
        HackforumsRelated,
        &["bytes", "vouch copy", "vouch", "hackforums", "hf upgrade", "award banner", "ub"],
    ));
    rules.push(Rule::any(
        Multimedia,
        &[
            "logo",
            "banner",
            "design",
            "illustration",
            "thumbnail",
            "video editing",
            "edit",
            "animation",
            "graphics",
            "gfx",
            "intro",
        ],
    ));
    rules.push(Rule::any(
        HackingProgramming,
        &[
            "hacking",
            "exploit",
            "pentest",
            "crypter",
            "programming",
            "coding",
            "developer",
            "script",
            "website development",
            "web development",
            "rat setup",
            "fud",
        ],
    ));
    rules.push(Rule::any(
        SocialNetworkBoost,
        &[
            "follower",
            "like",
            "view",
            "subscribers",
            "instagram boost",
            "social boost",
            "social network",
            "upvote",
            "retweets",
            "engagement",
        ],
    ));
    rules.push(Rule::any(
        TutorialsGuides,
        &["tutorial", "guide", "ebook", "method", "course", "mentoring", "youtube method"],
    ));
    rules.push(Rule::any(
        ToolsBotsSoftware,
        &["bot", "tool", "software", "program", "checker", "generator", "automation", "macro"],
    ));
    rules.push(Rule::any(
        Marketing,
        &["marketing", "promotion", "promote", "advertising", "advert", "seo", "traffic"],
    ));
    rules.push(Rule::any(Ewhoring, &["ewhoring", "ewhore", "pack of pictures", "camgirl pack"]));
    rules.push(Rule::any(
        DeliveryShipping,
        &["shipping", "delivery", "dropship", "dropshipping", "parcel", "refund service"],
    ));
    rules.push(Rule::any(
        AcademicHelp,
        &["homework", "essay", "dissertation", "assignment", "thesis", "coursework"],
    ));
    rules.push(Rule::any(ContestAward, &["contest", "giveaway", "award", "raffle", "lottery"]));

    CategoryMatcher::new(rules)
}

/// The payment-method matcher (Table 4 buckets).
pub fn payment_lexicon() -> CategoryMatcher<PaymentMethod> {
    use PaymentMethod::*;
    CategoryMatcher::new(vec![
        Rule::any(Bitcoin, &["bitcoin"]),
        Rule::any(PayPal, &["paypal"]),
        Rule::any(AmazonGiftcards, &["amazon giftcard", "amazon"]),
        Rule::any(Cashapp, &["cashapp", "cash app"]),
        Rule::any(Usd, &["usd", "cash", "dollars", "bank transfer", "wire"]),
        Rule::any(Ethereum, &["ethereum"]),
        Rule::any(Venmo, &["venmo"]),
        Rule::any(VBucks, &["vbucks"]),
        Rule::any(Zelle, &["zelle"]),
        Rule::any(BitcoinCash, &["bitcoincash", "bitcoin cash"]),
        Rule::any(AppleGooglePay, &["applepay", "apple pay", "googlepay", "google pay"]),
        Rule::any(Litecoin, &["litecoin"]),
        Rule::any(Monero, &["monero"]),
        Rule::any(Skrill, &["skrill"]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::Normalizer;
    use crate::token::tokenize;

    fn activities(s: &str) -> Vec<TradeCategory> {
        let toks = Normalizer::default().normalize(&tokenize(s));
        activity_lexicon().matches(&toks)
    }

    fn payments(s: &str) -> Vec<PaymentMethod> {
        let toks = Normalizer::default().normalize(&tokenize(s));
        payment_lexicon().matches(&toks)
    }

    #[test]
    fn currency_exchange_requires_a_currency() {
        assert!(activities("exchange btc for pp").contains(&TradeCategory::CurrencyExchange));
        assert!(!activities("exchange of pleasantries").contains(&TradeCategory::CurrencyExchange));
    }

    #[test]
    fn multi_category_example_from_paper() {
        // "buying fortnite account" -> gaming-related AND account/license.
        let cats = activities("buying fortnite account");
        assert!(cats.contains(&TradeCategory::GamingRelated));
        assert!(cats.contains(&TradeCategory::AccountsLicenses));
    }

    #[test]
    fn hackforums_products() {
        assert!(activities("selling 500k bytes").contains(&TradeCategory::HackforumsRelated));
        assert!(activities("vouch copy of my ebook").contains(&TradeCategory::HackforumsRelated));
    }

    #[test]
    fn ewhoring_and_academic() {
        assert!(activities("ewhoring pack 100 pics").contains(&TradeCategory::Ewhoring));
        assert!(activities("write your dissertation").contains(&TradeCategory::AcademicHelp));
    }

    #[test]
    fn payment_methods_basic() {
        assert_eq!(payments("$50 via cash app"), vec![PaymentMethod::Cashapp]);
        let p = payments("btc or amazon gift card");
        assert!(p.contains(&PaymentMethod::Bitcoin));
        assert!(p.contains(&PaymentMethod::AmazonGiftcards));
        assert!(payments("apple pay accepted").contains(&PaymentMethod::AppleGooglePay));
    }

    #[test]
    fn amazon_giftcard_not_double_counted_as_generic_giftcard_method() {
        let p = payments("amazon giftcard");
        assert_eq!(p, vec![PaymentMethod::AmazonGiftcards]);
    }

    #[test]
    fn uncategorized_text_matches_nothing() {
        assert!(activities("misc stuff").is_empty());
        assert!(payments("misc stuff").is_empty());
    }
}
