//! Text mining of contract obligation sections.
//!
//! §4.3–4.5 of the paper extract structure from the free-text obligation
//! sections of *public* contracts: normalisation ("removing stop-words,
//! delimiters, digits, and unifying synonyms"), regular-expression
//! categorisation into manually defined buckets (trading activities and
//! payment methods), and extraction of quoted trading values with currency
//! denominations.
//!
//! This crate implements that pipeline with hand-rolled, unit-testable
//! components instead of a regex engine (the `regex` crate is outside the
//! approved offline dependency set, and the paper's expressions are keyword
//! and phrase patterns that a token matcher expresses directly):
//!
//! * [`tokenize`] — lower-cases and splits raw text into word/number tokens;
//! * [`Normalizer`] — stop-word removal, digit stripping and synonym
//!   unification over token streams;
//! * [`CategoryMatcher`] — prioritised keyword/phrase rules mapping
//!   normalised tokens to categories; instantiated by [`activity_lexicon`]
//!   (the 16 trading-activity buckets) and [`payment_lexicon`] (payment
//!   methods);
//! * [`scan_money`] — extraction of `(amount, denomination)` mentions such
//!   as `$1,000`, `0.05 btc` or `50 paypal`.

pub mod keywords;
pub mod lexicons;
pub mod matcher;
pub mod money;
pub mod normalize;
pub mod token;

pub use keywords::{distinctive_tokens, CategoryKeywords};
pub use lexicons::{activity_lexicon, payment_lexicon, PaymentMethod, TradeCategory};
pub use matcher::{CategoryMatcher, Rule};
pub use money::{scan_money, MoneyMention};
pub use normalize::Normalizer;
pub use token::tokenize;

/// Convenience: full classification of one obligation text into trading
/// activities using the default normaliser and lexicon.
pub fn classify_activities(text: &str) -> Vec<TradeCategory> {
    let normalizer = Normalizer::default();
    let tokens = normalizer.normalize(&tokenize(text));
    activity_lexicon().matches(&tokens)
}

/// Convenience: full classification of one obligation text into payment
/// methods using the default normaliser and lexicon.
pub fn classify_payments(text: &str) -> Vec<PaymentMethod> {
    let normalizer = Normalizer::default();
    let tokens = normalizer.normalize(&tokenize(text));
    payment_lexicon().matches(&tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_classification() {
        let cats = classify_activities("Selling my fortnite account, rare skins");
        assert!(cats.contains(&TradeCategory::GamingRelated));
        assert!(cats.contains(&TradeCategory::AccountsLicenses));

        let pays = classify_payments("exchange $50 paypal for btc");
        assert!(pays.contains(&PaymentMethod::PayPal));
        assert!(pays.contains(&PaymentMethod::Bitcoin));
    }
}
