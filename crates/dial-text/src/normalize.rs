//! Token-stream normalisation: stop-word removal, digit stripping and
//! synonym unification (§4.3).

use std::collections::{HashMap, HashSet};

/// Normalises token streams ahead of category matching.
#[derive(Debug, Clone)]
pub struct Normalizer {
    stopwords: HashSet<&'static str>,
    synonyms: HashMap<&'static str, &'static str>,
    /// Whether to drop pure-number tokens (the category matcher does not
    /// need them; the money scanner runs on raw text instead).
    strip_digits: bool,
}

/// Stop-words observed to carry no category signal in obligation text.
const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "and",
    "or",
    "of",
    "to",
    "for",
    "in",
    "on",
    "with",
    "my",
    "your",
    "our",
    "their",
    "his",
    "her",
    "its",
    "i",
    "you",
    "we",
    "they",
    "me",
    "will",
    "send",
    "sending",
    "receive",
    "receiving",
    "give",
    "giving",
    "get",
    "getting",
    "provide",
    "providing",
    "after",
    "before",
    "once",
    "upon",
    "per",
    "via",
    "as",
    "is",
    "are",
    "be",
    "been",
    "this",
    "that",
    "each",
    "both",
    "all",
    "any",
    "some",
    "new",
    "one",
    "two",
    "first",
    "then",
    "from",
    "by",
    "at",
    "it",
    "within",
    "hours",
    "hrs",
    "days",
    "instant",
    "instantly",
    "fast",
    "cheap",
    "worth",
    "x",
];

/// Synonym table unifying the spellings seen in the wild to canonical forms.
/// Multi-token synonyms are handled by the matcher's phrase rules; this table
/// is strictly token→token.
const SYNONYMS: &[(&str, &str)] = &[
    // payment spellings
    ("pp", "paypal"),
    ("payppal", "paypal"),
    ("btc", "bitcoin"),
    ("bitcoins", "bitcoin"),
    ("eth", "ethereum"),
    ("ether", "ethereum"),
    ("bch", "bitcoincash"),
    ("ltc", "litecoin"),
    ("xmr", "monero"),
    ("amzn", "amazon"),
    ("gc", "giftcard"),
    ("giftcards", "giftcard"),
    ("gift", "giftcard"), // "gift card" -> "giftcard card"; card is absorbed below
    ("card", "giftcard"),
    ("cards", "giftcard"),
    ("ca$happ", "cashapp"),
    ("cashap", "cashapp"),
    ("venmo", "venmo"),
    ("vbuck", "vbucks"),
    ("vbux", "vbucks"),
    // goods spellings
    ("acc", "account"),
    ("accs", "account"),
    ("accounts", "account"),
    ("lic", "license"),
    ("licence", "license"),
    ("licenses", "license"),
    ("licences", "license"),
    ("keys", "key"),
    ("ig", "instagram"),
    ("insta", "instagram"),
    ("yt", "youtube"),
    ("fb", "facebook"),
    ("subs", "subscribers"),
    ("followers", "follower"),
    ("follows", "follower"),
    ("likes", "like"),
    ("views", "view"),
    ("bots", "bot"),
    ("tools", "tool"),
    ("tutorials", "tutorial"),
    ("guides", "guide"),
    ("ebooks", "ebook"),
    ("methods", "method"),
    ("packs", "pack"),
    ("pics", "pictures"),
    ("vouches", "vouch"),
    ("rats", "rat"),
    ("essays", "essay"),
    ("dissertations", "dissertation"),
    ("assignments", "assignment"),
    ("logos", "logo"),
    ("banners", "banner"),
    ("thumbnails", "thumbnail"),
    ("upvotes", "upvote"),
    ("exch", "exchange"),
    ("exchanging", "exchange"),
    ("xchange", "exchange"),
    ("payments", "payment"),
    ("skins", "skin"),
    ("coins", "coin"),
];

/// Bigrams merged into single canonical tokens after synonym unification,
/// so phrase-level instrument names ("cash app") cannot also fire their
/// component-word rules ("cash" → USD).
const BIGRAMS: &[(&str, &str, &str)] = &[
    ("cash", "app", "cashapp"),
    ("apple", "pay", "applepay"),
    ("google", "pay", "googlepay"),
    ("bitcoin", "cash", "bitcoincash"),
    ("v", "bucks", "vbucks"),
];

impl Default for Normalizer {
    fn default() -> Self {
        Self {
            stopwords: STOPWORDS.iter().copied().collect(),
            synonyms: SYNONYMS.iter().copied().collect(),
            strip_digits: true,
        }
    }
}

impl Normalizer {
    /// A normaliser that keeps digit tokens (used by tests and ablations).
    pub fn keeping_digits() -> Self {
        Self { strip_digits: false, ..Self::default() }
    }

    /// A pass-through normaliser (ablation baseline: no stop-words, no
    /// synonyms, no digit stripping).
    pub fn identity() -> Self {
        Self { stopwords: HashSet::new(), synonyms: HashMap::new(), strip_digits: false }
    }

    /// Applies stop-word removal, digit stripping and synonym unification.
    pub fn normalize(&self, tokens: &[String]) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        for tok in tokens {
            if self.stopwords.contains(tok.as_str()) {
                continue;
            }
            if self.strip_digits && tok.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',')
            {
                continue;
            }
            let canonical = self.synonyms.get(tok.as_str()).copied().unwrap_or(tok.as_str());
            // Collapse immediate duplicates created by unification
            // (e.g. "gift card" -> "giftcard giftcard").
            if out.last().map(String::as_str) != Some(canonical) {
                out.push(canonical.to_string());
            }
        }
        self.merge_bigrams(out)
    }

    /// Merges the known bigrams into single canonical tokens.
    fn merge_bigrams(&self, tokens: Vec<String>) -> Vec<String> {
        if self.synonyms.is_empty() {
            // Identity normaliser also skips bigram merging.
            return tokens;
        }
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            if i + 1 < tokens.len() {
                if let Some((_, _, merged)) =
                    BIGRAMS.iter().find(|(a, b, _)| tokens[i] == *a && tokens[i + 1] == *b)
                {
                    out.push((*merged).to_string());
                    i += 2;
                    continue;
                }
            }
            out.push(tokens[i].clone());
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn norm(s: &str) -> Vec<String> {
        Normalizer::default().normalize(&tokenize(s))
    }

    #[test]
    fn removes_stopwords_and_digits() {
        assert_eq!(norm("i will send the 100 bitcoin"), ["bitcoin"]);
    }

    #[test]
    fn unifies_synonyms() {
        assert_eq!(norm("btc for pp"), ["bitcoin", "paypal"]);
        assert_eq!(norm("fortnite accs"), ["fortnite", "account"]);
    }

    #[test]
    fn collapses_duplicate_after_unification() {
        assert_eq!(norm("amazon gift card"), ["amazon", "giftcard"]);
    }

    #[test]
    fn identity_is_passthrough() {
        let toks = tokenize("i will send 100 btc");
        assert_eq!(Normalizer::identity().normalize(&toks), toks);
    }

    #[test]
    fn normalization_is_idempotent() {
        let n = Normalizer::default();
        let once = n.normalize(&tokenize("selling my btc for amazon gift cards 50"));
        let twice = n.normalize(&once);
        assert_eq!(once, twice);
    }
}
