//! Distinctive-keyword extraction (extension).
//!
//! §5.2 qualitatively analyses which products drive trade by reading the
//! threads behind completed contracts. This module mechanises the first
//! step: for a corpus of token streams labelled with categories, it ranks
//! each category's most *distinctive* tokens by smoothed log-odds against
//! the rest of the corpus — the standard "fightin' words" statistic.

use std::collections::HashMap;
use std::hash::Hash;

/// One category's ranked keywords.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryKeywords<C> {
    /// The category.
    pub category: C,
    /// `(token, log-odds score)`, highest first.
    pub keywords: Vec<(String, f64)>,
}

/// Ranks the `top_n` most distinctive tokens for every category present in
/// `corpus`, by add-one-smoothed log-odds of in-category vs out-of-category
/// token frequency.
///
/// Tokens occurring fewer than `min_count` times in a category are skipped
/// (rare tokens get unstable scores).
pub fn distinctive_tokens<C: Copy + Eq + Hash>(
    corpus: &[(Vec<String>, C)],
    top_n: usize,
    min_count: usize,
) -> Vec<CategoryKeywords<C>> {
    // Global and per-category token counts.
    let mut global: HashMap<&str, usize> = HashMap::new();
    let mut per_cat: HashMap<C, HashMap<&str, usize>> = HashMap::new();
    let mut cat_totals: HashMap<C, usize> = HashMap::new();
    let mut grand_total = 0usize;
    for (tokens, cat) in corpus {
        for tok in tokens {
            *global.entry(tok.as_str()).or_default() += 1;
            *per_cat.entry(*cat).or_default().entry(tok.as_str()).or_default() += 1;
            *cat_totals.entry(*cat).or_default() += 1;
            grand_total += 1;
        }
    }
    let vocab = global.len() as f64;

    let mut cats: Vec<C> = per_cat.keys().copied().collect();
    // Stable output order requires a sortable key; use first-appearance
    // order in the corpus instead of relying on HashMap iteration.
    let mut order: HashMap<C, usize> = HashMap::new();
    for (_, cat) in corpus {
        let next = order.len();
        order.entry(*cat).or_insert(next);
    }
    cats.sort_by_key(|c| order[c]);

    cats.into_iter()
        .map(|cat| {
            let counts = &per_cat[&cat];
            let in_total = cat_totals[&cat] as f64;
            let out_total = (grand_total - cat_totals[&cat]) as f64;
            let mut scored: Vec<(String, f64)> = counts
                .iter()
                .filter(|(_, n)| **n >= min_count)
                .map(|(tok, n)| {
                    let in_rate = (*n as f64 + 1.0) / (in_total + vocab);
                    let out_n = (global[tok] - n) as f64;
                    let out_rate = (out_n + 1.0) / (out_total + vocab);
                    ((*tok).to_string(), (in_rate / out_rate).ln())
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            scored.truncate(top_n);
            CategoryKeywords { category: cat, keywords: scored }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn planted_vocabulary_is_recovered() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        enum Cat {
            Gaming,
            Academic,
        }
        let mut corpus = Vec::new();
        for _ in 0..30 {
            corpus.push((toks("selling fortnite skins account"), Cat::Gaming));
            corpus.push((toks("essay writing help deadline"), Cat::Academic));
        }
        // A shared filler token appears everywhere.
        for _ in 0..30 {
            corpus.push((toks("selling cheap deal"), Cat::Gaming));
            corpus.push((toks("selling cheap deal"), Cat::Academic));
        }
        let report = distinctive_tokens(&corpus, 3, 2);
        let gaming = report.iter().find(|r| r.category == Cat::Gaming).unwrap();
        let academic = report.iter().find(|r| r.category == Cat::Academic).unwrap();
        let top_gaming: Vec<&str> = gaming.keywords.iter().map(|(t, _)| t.as_str()).collect();
        let top_academic: Vec<&str> = academic.keywords.iter().map(|(t, _)| t.as_str()).collect();
        assert!(top_gaming.contains(&"fortnite"), "{top_gaming:?}");
        assert!(top_academic.contains(&"essay"), "{top_academic:?}");
        // The shared filler never tops a list.
        assert_ne!(top_gaming[0], "selling");
        assert_ne!(top_academic[0], "selling");
        // Scores are positive for distinctive tokens.
        assert!(gaming.keywords[0].1 > 0.0);
    }

    #[test]
    fn min_count_filters_noise() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        struct Only;
        let corpus = vec![(toks("common common common rare"), Only), (toks("common common"), Only)];
        let report = distinctive_tokens(&corpus, 10, 2);
        let tokens: Vec<&str> = report[0].keywords.iter().map(|(t, _)| t.as_str()).collect();
        assert!(tokens.contains(&"common"));
        assert!(!tokens.contains(&"rare"), "rare token must be filtered");
    }

    #[test]
    fn empty_corpus_is_empty() {
        let corpus: Vec<(Vec<String>, u8)> = Vec::new();
        assert!(distinctive_tokens(&corpus, 5, 1).is_empty());
    }
}
