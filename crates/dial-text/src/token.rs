//! Tokenisation of raw obligation text.

/// Splits raw text into lower-cased tokens.
///
/// A token is a maximal run of ASCII alphanumerics, possibly containing
/// internal `.`/`,` when flanked by digits (so `1,000` and `0.05` survive as
/// single tokens for the money scanner), plus the standalone currency sigils
/// `$`, `£`, `€` which are meaningful to value extraction.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '$' || c == '£' || c == '€' {
            tokens.push(c.to_string());
            i += 1;
        } else if c.is_ascii_alphanumeric() {
            let mut tok = String::new();
            while i < chars.len() {
                let c = chars[i];
                if c.is_ascii_alphanumeric() {
                    tok.push(c.to_ascii_lowercase());
                    i += 1;
                } else if (c == '.' || c == ',')
                    && i + 1 < chars.len()
                    && chars[i + 1].is_ascii_digit()
                    && tok.chars().last().is_some_and(|p| p.is_ascii_digit())
                {
                    // Digit-flanked separator: keep inside the token.
                    tok.push(c);
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(tok);
        } else {
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(toks("Selling Fortnite ACCOUNT!"), ["selling", "fortnite", "account"]);
    }

    #[test]
    fn keeps_numbers_with_separators() {
        assert_eq!(toks("pay 1,000.50 usd"), ["pay", "1,000.50", "usd"]);
        assert_eq!(toks("0.05 BTC"), ["0.05", "btc"]);
    }

    #[test]
    fn sigils_are_standalone_tokens() {
        assert_eq!(toks("$100"), ["$", "100"]);
        assert_eq!(toks("£20 each"), ["£", "20", "each"]);
    }

    #[test]
    fn trailing_punctuation_is_dropped() {
        assert_eq!(toks("price: 100."), ["price", "100"]);
        assert_eq!(toks("a,b"), ["a", "b"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(toks("").is_empty());
        assert!(toks("!!! --- ***").is_empty());
    }
}
