//! Property-based tests for the text-mining pipeline.

use dial_text::{scan_money, tokenize, Normalizer};
use proptest::prelude::*;

proptest! {
    /// The tokenizer never panics and produces only lower-case tokens
    /// without whitespace.
    #[test]
    fn tokenizer_total_and_lowercase(text in ".{0,200}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert!(!tok.chars().any(|c| c.is_ascii_uppercase()));
        }
    }

    /// Tokenising twice through a join is stable (tokens are themselves
    /// tokenisable to the same stream).
    #[test]
    fn tokenizer_stable_under_rejoin(text in "[ -~]{0,200}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    /// Normalisation is idempotent.
    #[test]
    fn normalizer_idempotent(text in "[a-z0-9 $.,]{0,200}") {
        let n = Normalizer::default();
        let once = n.normalize(&tokenize(&text));
        let twice = n.normalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// The money scanner never panics, and every extracted amount is finite
    /// and non-negative.
    #[test]
    fn money_scanner_total(text in ".{0,300}") {
        for m in scan_money(&text) {
            prop_assert!(m.amount.is_finite());
            prop_assert!(m.amount >= 0.0);
        }
    }

    /// A canonical "$<n>" quote is always recovered exactly.
    #[test]
    fn dollar_quotes_recovered(n in 1u32..1_000_000, prefix in "[a-z ]{0,30}", suffix in "[a-z ]{0,30}") {
        let text = format!("{prefix} ${n} {suffix}");
        let mentions = scan_money(&text);
        prop_assert!(
            mentions.iter().any(|m| m.amount == f64::from(n)),
            "missing ${n} in {text:?}: {mentions:?}"
        );
    }
}

mod matcher_properties {
    use dial_text::{activity_lexicon, classify_activities, classify_payments, payment_lexicon};
    use proptest::prelude::*;

    proptest! {
        /// Classification is total over arbitrary input and returns each
        /// category at most once.
        #[test]
        fn classification_total_and_duplicate_free(text in ".{0,300}") {
            let cats = classify_activities(&text);
            let mut dedup = cats.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(cats.len(), dedup.len(), "duplicate categories");
            let pays = classify_payments(&text);
            let mut pd = pays.clone();
            pd.sort();
            pd.dedup();
            prop_assert_eq!(pays.len(), pd.len());
        }

        /// Matching is monotone under concatenation: appending more text
        /// never removes a matched category.
        #[test]
        fn matching_monotone_under_concatenation(a in "[a-z ]{0,80}", b in "[a-z ]{0,80}") {
            let before = classify_activities(&a);
            let combined = classify_activities(&format!("{a} {b}"));
            for cat in before {
                prop_assert!(combined.contains(&cat), "{cat:?} lost after append");
            }
        }

        /// Every single-token `any_of` pattern in the lexicons fires on
        /// itself (rules are internally consistent with the normaliser's
        /// canonical vocabulary), unless gated by `require_all`.
        #[test]
        fn rules_fire_on_their_own_patterns(idx in 0usize..1000) {
            let lex = activity_lexicon();
            let rules = lex.rules();
            let rule = &rules[idx % rules.len()];
            if rule.require_all.is_empty() {
                if let Some(pattern) = rule.any_of.first() {
                    let tokens: Vec<String> =
                        pattern.split_whitespace().map(str::to_string).collect();
                    let matched = lex.matches(&tokens);
                    prop_assert!(
                        matched.contains(&rule.category),
                        "{pattern:?} does not fire {:?}",
                        rule.category
                    );
                }
            }
            let _ = payment_lexicon(); // exercised for symmetry
        }
    }
}
