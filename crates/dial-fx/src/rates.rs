//! Date-dependent USD exchange rates.

use crate::currency::Currency;
use dial_time::Date;

/// Provides the USD value of one unit of a currency on a given date.
pub trait RateProvider {
    /// USD per one unit of `currency` on `date`.
    fn usd_rate(&self, currency: Currency, date: Date) -> f64;
}

/// A piecewise-linear rate curve over epoch days.
#[derive(Debug, Clone)]
struct Curve {
    /// `(epoch_day, usd_rate)` anchors in strictly increasing day order.
    anchors: &'static [(i64, f64)],
}

impl Curve {
    fn at(&self, date: Date) -> f64 {
        let day = date.to_epoch_days();
        let a = self.anchors;
        debug_assert!(!a.is_empty());
        if day <= a[0].0 {
            return a[0].1;
        }
        if day >= a[a.len() - 1].0 {
            return a[a.len() - 1].1;
        }
        // Linear interpolation between the surrounding anchors.
        let idx = a.partition_point(|(d, _)| *d <= day);
        let (d0, r0) = a[idx - 1];
        let (d1, r1) = a[idx];
        let t = (day - d0) as f64 / (d1 - d0) as f64;
        r0 + t * (r1 - r0)
    }
}

/// Epoch-day constants for the anchor dates (see `dial_time::Date` tests for
/// the conversion sanity checks).
const fn d(y: i64, ord: i64) -> i64 {
    // Days for the start of year `y` relative to 1970 plus ordinal offset.
    // Only used with pre-computed year starts below.
    y + ord
}

const Y2018: i64 = 17532; // 2018-01-01
const Y2019: i64 = 17897; // 2019-01-01
const Y2020: i64 = 18262; // 2020-01-01

/// Deterministic synthetic rate history, anchored at the real 2018–2020
/// magnitudes.
///
/// * **BTC** traces the decline from ~$7.5k (June 2018) to the ~$3.5k winter
///   2018/19 trough, the 2019 rally to ~$12k, the drift back to ~$7.2k, the
///   COVID crash to ~$5k (mid-March 2020) and the recovery to ~$9.4k.
/// * **ETH/BCH/LTC/XMR** follow proportionally similar shapes.
/// * Fiat curves drift gently around their real 2018–2020 means.
/// * V-Bucks and forum bytes are pegged at their effective street value.
#[derive(Debug, Clone, Default)]
pub struct SyntheticRates;

impl SyntheticRates {
    fn curve(currency: Currency) -> Curve {
        // Anchor tables. Dates are (year-start epoch day + day-of-year).
        const BTC: &[(i64, f64)] = &[
            (d(Y2018, 151), 7500.0),  // 2018-06-01
            (d(Y2018, 212), 7000.0),  // 2018-08-01
            (d(Y2018, 318), 6300.0),  // 2018-11-15
            (d(Y2018, 349), 3800.0),  // 2018-12-16
            (d(Y2019, 59), 3500.0),   // 2019-03-01
            (d(Y2019, 151), 8000.0),  // 2019-06-01
            (d(Y2019, 177), 12000.0), // 2019-06-27
            (d(Y2019, 273), 8300.0),  // 2019-10-01
            (d(Y2019, 351), 7200.0),  // 2019-12-18
            (d(Y2020, 44), 10300.0),  // 2020-02-14
            (d(Y2020, 71), 7900.0),   // 2020-03-12
            (d(Y2020, 75), 5000.0),   // 2020-03-16
            (d(Y2020, 121), 8800.0),  // 2020-05-01
            (d(Y2020, 181), 9400.0),  // 2020-06-30
        ];
        const ETH: &[(i64, f64)] = &[
            (d(Y2018, 151), 580.0),
            (d(Y2018, 244), 280.0),
            (d(Y2018, 349), 85.0),
            (d(Y2019, 59), 135.0),
            (d(Y2019, 177), 310.0),
            (d(Y2019, 351), 130.0),
            (d(Y2020, 44), 265.0),
            (d(Y2020, 75), 110.0),
            (d(Y2020, 181), 230.0),
        ];
        const BCH: &[(i64, f64)] = &[
            (d(Y2018, 151), 1000.0),
            (d(Y2018, 349), 100.0),
            (d(Y2019, 177), 420.0),
            (d(Y2020, 75), 165.0),
            (d(Y2020, 181), 225.0),
        ];
        const LTC: &[(i64, f64)] = &[
            (d(Y2018, 151), 120.0),
            (d(Y2018, 349), 24.0),
            (d(Y2019, 177), 135.0),
            (d(Y2020, 75), 31.0),
            (d(Y2020, 181), 42.0),
        ];
        const XMR: &[(i64, f64)] = &[
            (d(Y2018, 151), 160.0),
            (d(Y2018, 349), 45.0),
            (d(Y2019, 177), 95.0),
            (d(Y2020, 75), 35.0),
            (d(Y2020, 181), 64.0),
        ];
        const GBP: &[(i64, f64)] = &[
            (d(Y2018, 151), 1.33),
            (d(Y2019, 1), 1.27),
            (d(Y2019, 244), 1.22),
            (d(Y2020, 75), 1.16),
            (d(Y2020, 181), 1.24),
        ];
        const EUR: &[(i64, f64)] = &[
            (d(Y2018, 151), 1.17),
            (d(Y2019, 151), 1.12),
            (d(Y2020, 75), 1.09),
            (d(Y2020, 181), 1.12),
        ];
        const CAD: &[(i64, f64)] = &[
            (d(Y2018, 151), 0.77),
            (d(Y2019, 151), 0.74),
            (d(Y2020, 75), 0.70),
            (d(Y2020, 181), 0.74),
        ];
        const AUD: &[(i64, f64)] = &[
            (d(Y2018, 151), 0.76),
            (d(Y2019, 151), 0.69),
            (d(Y2020, 75), 0.58),
            (d(Y2020, 181), 0.69),
        ];
        const INR: &[(i64, f64)] = &[(d(Y2018, 151), 0.0149), (d(Y2020, 181), 0.0132)];
        const JPY: &[(i64, f64)] = &[(d(Y2018, 151), 0.0091), (d(Y2020, 181), 0.0093)];
        const USD: &[(i64, f64)] = &[(0, 1.0)];
        // 1,000 V-Bucks retail for $9.99; underground bulk rates run lower.
        const VBUCKS: &[(i64, f64)] = &[(0, 0.007)];
        // Forum bytes trade around $0.0004 each in-forum.
        const BYTES: &[(i64, f64)] = &[(0, 0.0004)];

        let anchors = match currency {
            Currency::Usd => USD,
            Currency::Gbp => GBP,
            Currency::Eur => EUR,
            Currency::Cad => CAD,
            Currency::Aud => AUD,
            Currency::Inr => INR,
            Currency::Jpy => JPY,
            Currency::Btc => BTC,
            Currency::Eth => ETH,
            Currency::Bch => BCH,
            Currency::Ltc => LTC,
            Currency::Xmr => XMR,
            Currency::VBucks => VBUCKS,
            Currency::Bytes => BYTES,
        };
        Curve { anchors }
    }
}

impl RateProvider for SyntheticRates {
    fn usd_rate(&self, currency: Currency, date: Date) -> f64 {
        Self::curve(currency).at(date)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_strictly_increasing() {
        for c in Currency::ALL {
            let curve = SyntheticRates::curve(c);
            for w in curve.anchors.windows(2) {
                assert!(w[0].0 < w[1].0, "{c:?} anchors out of order");
            }
        }
    }

    #[test]
    fn rates_are_positive_over_window() {
        let r = SyntheticRates;
        let mut day = Date::from_ymd(2018, 6, 1);
        let end = Date::from_ymd(2020, 6, 30);
        while day <= end {
            for c in Currency::ALL {
                let rate = r.usd_rate(c, day);
                assert!(rate.is_finite() && rate > 0.0, "{c:?} on {day}: {rate}");
            }
            day = day.plus_days(7);
        }
    }

    #[test]
    fn btc_anchor_values() {
        let r = SyntheticRates;
        let at = |y, m, d| r.usd_rate(Currency::Btc, Date::from_ymd(y, m, d));
        assert!((at(2018, 6, 1) - 7500.0).abs() < 1.0);
        assert!((at(2019, 3, 1) - 3500.0).abs() < 1.0);
        assert!(at(2019, 6, 27) > 11_000.0);
        assert!(at(2020, 3, 16) < 5_100.0);
        assert!(at(2020, 6, 30) > 9_000.0);
    }

    #[test]
    fn interpolation_is_between_anchors() {
        let r = SyntheticRates;
        // Between 2018-12-16 ($3800) and 2019-03-01 ($3500).
        let mid = r.usd_rate(Currency::Btc, Date::from_ymd(2019, 1, 20));
        assert!(mid < 3800.0 && mid > 3500.0);
    }

    #[test]
    fn clamps_outside_anchor_range() {
        let r = SyntheticRates;
        assert_eq!(
            r.usd_rate(Currency::Btc, Date::from_ymd(2010, 1, 1)),
            r.usd_rate(Currency::Btc, Date::from_ymd(2018, 6, 1))
        );
        assert_eq!(
            r.usd_rate(Currency::Btc, Date::from_ymd(2025, 1, 1)),
            r.usd_rate(Currency::Btc, Date::from_ymd(2020, 6, 30))
        );
    }
}
