//! Currency denominations observed in contract obligations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A currency or currency-like store of value quoted in contracts.
///
/// The paper observes fiat (USD dominant; GBP, CAD, EUR, AUD, INR, JPY
/// minor), cryptocurrencies (Bitcoin dominant; Ethereum, Bitcoin Cash,
/// Litecoin, Monero trivial), plus in-game/forum currencies (V-Bucks, HACK
/// FORUMS "bytes") which trade at tiny effective USD rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Currency {
    /// United States dollar — the default denomination when none is stated.
    Usd,
    /// Pound sterling.
    Gbp,
    /// Euro.
    Eur,
    /// Canadian dollar.
    Cad,
    /// Australian dollar.
    Aud,
    /// Indian rupee.
    Inr,
    /// Japanese yen.
    Jpy,
    /// Bitcoin.
    Btc,
    /// Ethereum.
    Eth,
    /// Bitcoin Cash.
    Bch,
    /// Litecoin.
    Ltc,
    /// Monero.
    Xmr,
    /// Fortnite V-Bucks (in-game currency).
    VBucks,
    /// HACK FORUMS internal "bytes" currency.
    Bytes,
}

impl Currency {
    /// All currencies.
    pub const ALL: [Currency; 14] = [
        Currency::Usd,
        Currency::Gbp,
        Currency::Eur,
        Currency::Cad,
        Currency::Aud,
        Currency::Inr,
        Currency::Jpy,
        Currency::Btc,
        Currency::Eth,
        Currency::Bch,
        Currency::Ltc,
        Currency::Xmr,
        Currency::VBucks,
        Currency::Bytes,
    ];

    /// ISO-4217-style code (lower case; informal codes for non-ISO units).
    pub fn code(&self) -> &'static str {
        match self {
            Currency::Usd => "usd",
            Currency::Gbp => "gbp",
            Currency::Eur => "eur",
            Currency::Cad => "cad",
            Currency::Aud => "aud",
            Currency::Inr => "inr",
            Currency::Jpy => "jpy",
            Currency::Btc => "btc",
            Currency::Eth => "eth",
            Currency::Bch => "bch",
            Currency::Ltc => "ltc",
            Currency::Xmr => "xmr",
            Currency::VBucks => "vbucks",
            Currency::Bytes => "bytes",
        }
    }

    /// Parses a currency code (case-insensitive), accepting common aliases
    /// seen in obligation text.
    pub fn from_code(code: &str) -> Option<Currency> {
        let lower = code.to_ascii_lowercase();
        Some(match lower.as_str() {
            "usd" | "$" | "dollar" | "dollars" => Currency::Usd,
            "gbp" | "£" | "pound" | "pounds" | "quid" => Currency::Gbp,
            "eur" | "€" | "euro" | "euros" => Currency::Eur,
            "cad" => Currency::Cad,
            "aud" => Currency::Aud,
            "inr" | "rupee" | "rupees" => Currency::Inr,
            "jpy" | "yen" => Currency::Jpy,
            "btc" | "bitcoin" | "bitcoins" => Currency::Btc,
            "eth" | "ethereum" | "ether" => Currency::Eth,
            "bch" => Currency::Bch,
            "ltc" | "litecoin" => Currency::Ltc,
            "xmr" | "monero" => Currency::Xmr,
            "vbucks" | "v-bucks" | "vbuck" => Currency::VBucks,
            "bytes" => Currency::Bytes,
            _ => return None,
        })
    }

    /// True for cryptocurrencies.
    pub fn is_crypto(&self) -> bool {
        matches!(
            self,
            Currency::Btc | Currency::Eth | Currency::Bch | Currency::Ltc | Currency::Xmr
        )
    }

    /// True for government-issued fiat.
    pub fn is_fiat(&self) -> bool {
        matches!(
            self,
            Currency::Usd
                | Currency::Gbp
                | Currency::Eur
                | Currency::Cad
                | Currency::Aud
                | Currency::Inr
                | Currency::Jpy
        )
    }
}

impl fmt::Display for Currency {
    /// Displays the upper-cased code, e.g. `BTC`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code().to_ascii_uppercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trip() {
        for c in Currency::ALL {
            assert_eq!(Currency::from_code(c.code()), Some(c), "{c:?}");
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(Currency::from_code("Bitcoin"), Some(Currency::Btc));
        assert_eq!(Currency::from_code("$"), Some(Currency::Usd));
        assert_eq!(Currency::from_code("V-BUCKS"), Some(Currency::VBucks));
        assert_eq!(Currency::from_code("doge"), None);
    }

    #[test]
    fn class_partition() {
        for c in Currency::ALL {
            let classes = [c.is_crypto(), c.is_fiat()];
            assert!(classes.iter().filter(|b| **b).count() <= 1, "{c:?} in two classes");
        }
        assert!(Currency::Btc.is_crypto());
        assert!(Currency::Usd.is_fiat());
        assert!(!Currency::VBucks.is_crypto() && !Currency::VBucks.is_fiat());
    }

    #[test]
    fn display_upper() {
        assert_eq!(Currency::Btc.to_string(), "BTC");
    }
}
