//! Currencies and exchange rates.
//!
//! The paper converts every extracted contract value to USD "using the
//! conversion rates at the time the transactions were made" (§4.5). The real
//! rate history is replaced here by [`SyntheticRates`]: deterministic
//! piecewise-linear curves anchored at the real 2018–2020 magnitudes, so the
//! conversion code path (date-dependent lookups, cross-currency ratios) is
//! exercised with realistic dynamics — including the March 2020 crypto crash
//! and the mid-2019 Bitcoin rally that shape Figure 11.

pub mod currency;
pub mod rates;

pub use currency::Currency;
pub use rates::{RateProvider, SyntheticRates};

/// Converts `amount` of `currency` into USD at the rate on `date`.
pub fn to_usd(
    amount: f64,
    currency: Currency,
    date: dial_time::Date,
    rates: &impl RateProvider,
) -> f64 {
    amount * rates.usd_rate(currency, date)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_time::Date;

    #[test]
    fn usd_is_identity() {
        let r = SyntheticRates;
        let d = Date::from_ymd(2019, 6, 1);
        assert_eq!(to_usd(123.0, Currency::Usd, d, &r), 123.0);
    }

    #[test]
    fn btc_conversion_uses_date() {
        let r = SyntheticRates;
        let before = to_usd(1.0, Currency::Btc, Date::from_ymd(2020, 2, 15), &r);
        let crash = to_usd(1.0, Currency::Btc, Date::from_ymd(2020, 3, 16), &r);
        assert!(crash < before, "March 2020 crash must be visible");
    }
}
