//! Property-based tests for currency conversion.

use dial_fx::{to_usd, Currency, RateProvider, SyntheticRates};
use dial_time::Date;
use proptest::prelude::*;

fn arb_currency() -> impl Strategy<Value = Currency> {
    prop::sample::select(Currency::ALL.to_vec())
}

fn arb_date() -> impl Strategy<Value = Date> {
    (17_683i64..=18_443).prop_map(Date::from_epoch_days) // the study window
}

proptest! {
    /// Conversion is linear in the amount and strictly positive for
    /// positive amounts, for every currency and date in the window.
    #[test]
    fn conversion_linear_and_positive(
        c in arb_currency(),
        d in arb_date(),
        amount in 0.0001f64..1e6,
        k in 1.0f64..100.0,
    ) {
        let r = SyntheticRates;
        let v = to_usd(amount, c, d, &r);
        prop_assert!(v > 0.0 && v.is_finite());
        let kv = to_usd(amount * k, c, d, &r);
        prop_assert!((kv - k * v).abs() <= 1e-9 * kv.abs().max(1.0));
    }

    /// Rates vary continuously: consecutive days never jump more than 40%
    /// (even across the March 2020 crash anchors).
    #[test]
    fn rates_have_no_teleports(c in arb_currency(), d in arb_date()) {
        let r = SyntheticRates;
        let today = r.usd_rate(c, d);
        let tomorrow = r.usd_rate(c, d.plus_days(1));
        prop_assert!((tomorrow / today - 1.0).abs() < 0.4, "{c} {d}: {today} -> {tomorrow}");
    }

    /// USD round trip: converting X USD to USD is the identity.
    #[test]
    fn usd_identity(amount in 0.0f64..1e9, d in arb_date()) {
        prop_assert_eq!(to_usd(amount, Currency::Usd, d, &SyntheticRates), amount);
    }
}
