//! Deterministic transaction-hash and address generation.
//!
//! Real Bitcoin hashes are SHA-256 digests; for the simulation we only need
//! identifiers that are unique, deterministic for a seed, and look like
//! hex/base58 strings. A 64-bit FNV-1a-based mixer expanded to the desired
//! width is ample.

/// Deterministic generator of transaction hashes and addresses.
#[derive(Debug, Clone)]
pub struct HashGen {
    seed: u64,
    counter: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_mix(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Final avalanche (splitmix64 finaliser) so consecutive counters don't
/// produce visibly correlated identifiers.
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HashGen {
    /// Creates a generator for the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, counter: 0 }
    }

    fn next_word(&mut self, domain: u64) -> u64 {
        self.counter += 1;
        let mixed = fnv1a_mix(fnv1a_mix(fnv1a_mix(FNV_OFFSET, self.seed), domain), self.counter);
        avalanche(mixed)
    }

    /// A 64-hex-character transaction hash (shaped like a Bitcoin txid).
    pub fn tx_hash(&mut self) -> String {
        let mut out = String::with_capacity(64);
        let mut w = self.next_word(0xdead_beef);
        for i in 0..4 {
            out.push_str(&format!("{w:016x}"));
            if i < 3 {
                w = avalanche(w.wrapping_add(0x9e37_79b9_7f4a_7c15));
            }
        }
        out
    }

    /// A base58-looking P2PKH-style address beginning with `1`.
    pub fn address(&mut self) -> String {
        const ALPHABET: &[u8] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
        let mut out = String::with_capacity(34);
        out.push('1');
        let mut w = self.next_word(0xfeed_face);
        for i in 0..33 {
            if i % 10 == 9 {
                w = avalanche(w.wrapping_add(0x9e37_79b9_7f4a_7c15));
            }
            out.push(ALPHABET[(w % ALPHABET.len() as u64) as usize] as char);
            w /= ALPHABET.len() as u64;
            if w == 0 {
                w = avalanche(self.next_word(0xfeed_face));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hashes_are_unique_and_well_formed() {
        let mut g = HashGen::new(42);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let h = g.tx_hash();
            assert_eq!(h.len(), 64);
            assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(seen.insert(h), "duplicate tx hash");
        }
    }

    #[test]
    fn addresses_are_unique_and_well_formed() {
        let mut g = HashGen::new(42);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let a = g.address();
            assert_eq!(a.len(), 34);
            assert!(a.starts_with('1'));
            assert!(!a.contains('0') && !a.contains('O') && !a.contains('I') && !a.contains('l'));
            assert!(seen.insert(a), "duplicate address");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = HashGen::new(7);
        let mut b = HashGen::new(7);
        assert_eq!(a.tx_hash(), b.tx_hash());
        assert_eq!(a.address(), b.address());
        let mut c = HashGen::new(8);
        assert_ne!(HashGen::new(7).tx_hash(), c.tx_hash());
    }
}
