//! Block structure over the ledger (extension).
//!
//! The flat [`crate::Ledger`] answers the paper's verification query
//! directly; this layer adds the chain's native packaging — transactions
//! batched into timestamped blocks at a fixed cadence — so
//! confirmation-depth semantics ("is this payment k blocks deep by time
//! t?") are available, as a real verifier would require before treating a
//! settlement as final.

use crate::ledger::{ChainTx, Ledger};
use dial_time::Timestamp;
use serde::{Deserialize, Serialize};

/// Target spacing between blocks, in minutes (Bitcoin's ~10 minutes).
pub const BLOCK_SPACING_MINUTES: i64 = 10;

/// A mined block: a height, a timestamp and the hashes of the transactions
/// it confirms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Height (0-based, consecutive).
    pub height: u64,
    /// Mining time.
    pub mined_at: Timestamp,
    /// Confirmed transaction hashes, in ledger order.
    pub tx_hashes: Vec<String>,
}

/// A blockchain view assembled over a ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chain {
    blocks: Vec<Block>,
    /// Genesis timestamp the heights are anchored to.
    genesis: Timestamp,
}

impl Chain {
    /// Packs a ledger into blocks on the fixed cadence, anchored at the
    /// earliest transaction (or `fallback_genesis` for an empty ledger).
    /// A transaction confirmed at time `t` lands in the first block mined
    /// at or after `t`.
    pub fn assemble(ledger: &Ledger, fallback_genesis: Timestamp) -> Chain {
        let mut txs: Vec<&ChainTx> = ledger.iter().collect();
        txs.sort_by_key(|tx| (tx.confirmed_at, tx.hash.clone()));
        let genesis = txs.first().map(|tx| tx.confirmed_at).unwrap_or(fallback_genesis);

        let mut blocks: Vec<Block> = Vec::new();
        for tx in txs {
            let height = tx
                .confirmed_at
                .minutes()
                .saturating_sub(genesis.minutes())
                .div_euclid(BLOCK_SPACING_MINUTES) as u64;
            let mined_at = genesis.plus_minutes((height as i64 + 1) * BLOCK_SPACING_MINUTES);
            match blocks.last_mut() {
                Some(b) if b.height == height => b.tx_hashes.push(tx.hash.clone()),
                _ => blocks.push(Block { height, mined_at, tx_hashes: vec![tx.hash.clone()] }),
            }
        }
        Chain { blocks, genesis }
    }

    /// All non-empty blocks, height-ascending.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing a transaction hash.
    pub fn block_of(&self, tx_hash: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.tx_hashes.iter().any(|h| h == tx_hash))
    }

    /// Chain tip height implied by wall-clock time `now` (blocks arrive on
    /// the cadence whether or not they hold our transactions).
    pub fn tip_height_at(&self, now: Timestamp) -> u64 {
        now.minutes()
            .saturating_sub(self.genesis.minutes())
            .div_euclid(BLOCK_SPACING_MINUTES)
            .max(0) as u64
    }

    /// Number of confirmations a transaction has accumulated by `now`
    /// (1 when its block is the tip), or `None` if unknown/not yet mined.
    pub fn confirmations(&self, tx_hash: &str, now: Timestamp) -> Option<u64> {
        let block = self.block_of(tx_hash)?;
        if block.mined_at > now {
            return None;
        }
        Some(self.tip_height_at(now).saturating_sub(block.height) + 1)
    }

    /// True once the transaction is at least `depth` confirmations deep —
    /// the settlement-finality predicate a careful verifier would use.
    pub fn is_final(&self, tx_hash: &str, now: Timestamp, depth: u64) -> bool {
        self.confirmations(tx_hash, now).is_some_and(|c| c >= depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_time::Date;

    fn ts(minute: i64) -> Timestamp {
        Timestamp::at_midnight(Date::from_ymd(2020, 1, 1)).plus_minutes(minute)
    }

    fn ledger_with(times: &[i64]) -> Ledger {
        let mut l = Ledger::new();
        for (i, &m) in times.iter().enumerate() {
            l.insert(ChainTx {
                hash: format!("{i:064}"),
                to_address: format!("1Addr{i}"),
                value_usd: 100.0,
                confirmed_at: ts(m),
            });
        }
        l
    }

    #[test]
    fn batching_follows_the_cadence() {
        // Txs at minutes 0, 5, 12, 35 → blocks at heights 0, 0, 1, 3.
        let chain = Chain::assemble(&ledger_with(&[0, 5, 12, 35]), ts(0));
        let heights: Vec<u64> = chain.blocks().iter().map(|b| b.height).collect();
        assert_eq!(heights, vec![0, 1, 3]);
        assert_eq!(chain.blocks()[0].tx_hashes.len(), 2);
        assert_eq!(chain.block_of(&format!("{:064}", 3)).unwrap().height, 3);
    }

    #[test]
    fn confirmations_accumulate_with_time() {
        let chain = Chain::assemble(&ledger_with(&[0, 25]), ts(0));
        let tx0 = format!("{:064}", 0);
        // Before its block is mined (block 0 mines at minute 10): unknown.
        assert_eq!(chain.confirmations(&tx0, ts(5)), None);
        // At minute 10 the tip is height 1 → 2 confirmations for height 0.
        assert_eq!(chain.confirmations(&tx0, ts(10)), Some(2));
        // An hour later the depth has grown by the cadence.
        assert_eq!(chain.confirmations(&tx0, ts(70)), Some(8));
        assert!(chain.is_final(&tx0, ts(70), 6));
        assert!(!chain.is_final(&tx0, ts(10), 6));
        // Unknown hashes are never final.
        assert!(!chain.is_final("ffff", ts(1000), 1));
    }

    #[test]
    fn empty_ledger_assembles_empty_chain() {
        let chain = Chain::assemble(&Ledger::new(), ts(0));
        assert!(chain.blocks().is_empty());
        assert_eq!(chain.tip_height_at(ts(100)), 10);
    }
}
