//! A simulated Bitcoin-style ledger.
//!
//! §4.5 of the paper manually verifies the 163 highest-value contracts:
//! where a contract quotes a Bitcoin address and/or transaction hash, the
//! authors look up the transaction "recorded on the blockchain at the
//! completion time" and compare the observed value against the contractual
//! claim. Of those trades, 50% were confirmed, 43% had a different (usually
//! lower) value — private renegotiations and typos — and 7% could not be
//! confirmed.
//!
//! The real blockchain is unavailable offline, so this crate provides a
//! deterministic append-only [`Ledger`] with the exact query surface the
//! verification step needs: lookup by transaction hash, and scan of
//! transactions paying an address inside a time window. The simulator plants
//! transactions (matching, renegotiated, or absent) for contracts that quote
//! chain references.

pub mod blocks;
pub mod hashgen;
pub mod ledger;

pub use blocks::{Block, Chain};
pub use hashgen::HashGen;
pub use ledger::{ChainTx, Ledger, Verdict};
