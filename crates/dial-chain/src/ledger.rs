//! The append-only transaction ledger and the verification query.

use dial_time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A confirmed on-chain transaction paying `to_address`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainTx {
    /// Transaction id (64 hex chars).
    pub hash: String,
    /// Receiving address.
    pub to_address: String,
    /// Transferred value, denominated in USD at confirmation time. The
    /// verification step compares USD values, so the ledger stores the
    /// already-converted amount.
    pub value_usd: f64,
    /// Confirmation time.
    pub confirmed_at: Timestamp,
}

/// Outcome of verifying a contractual value claim against the ledger,
/// mirroring the paper's manual-check categories (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// A matching transaction was found within tolerance of the claim.
    Confirmed,
    /// A transaction was found but its value differs beyond tolerance;
    /// carries the observed on-chain USD value (usually lower — private
    /// renegotiation — occasionally higher).
    Mismatch { observed_usd: f64 },
    /// No transaction was found for the quoted hash/address near the
    /// completion time.
    NotFound,
}

/// Relative tolerance for treating a claim as confirmed. On-chain values
/// rarely match advertised prices to the cent (fees, rate drift between
/// agreement and settlement), so a 10% band is used.
pub const CONFIRM_TOLERANCE: f64 = 0.10;

/// A deterministic, append-only ledger with hash and address indexes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    txs: Vec<ChainTx>,
    #[serde(skip)]
    by_hash: HashMap<String, usize>,
    #[serde(skip)]
    by_address: HashMap<String, Vec<usize>>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transaction.
    ///
    /// # Panics
    /// Panics if the hash already exists — txids are unique by construction.
    pub fn insert(&mut self, tx: ChainTx) {
        let idx = self.txs.len();
        let prev = self.by_hash.insert(tx.hash.clone(), idx);
        assert!(prev.is_none(), "duplicate tx hash {}", tx.hash);
        self.by_address.entry(tx.to_address.clone()).or_default().push(idx);
        self.txs.push(tx);
    }

    /// Rebuilds indexes after deserialisation.
    pub fn reindex(mut self) -> Self {
        self.by_hash.clear();
        self.by_address.clear();
        for (idx, tx) in self.txs.iter().enumerate() {
            self.by_hash.insert(tx.hash.clone(), idx);
            self.by_address.entry(tx.to_address.clone()).or_default().push(idx);
        }
        self
    }

    /// A stable content fingerprint: FNV-1a over the canonical JSON
    /// serialisation (transactions only — the indexes are rebuildable).
    /// Used alongside `Dataset::fingerprint` to key snapshot-scoped
    /// caches.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("ledger serialises");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in json.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Number of transactions recorded.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True if no transactions are recorded.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Iterates all transactions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ChainTx> {
        self.txs.iter()
    }

    /// Looks up a transaction by its hash.
    pub fn by_hash(&self, hash: &str) -> Option<&ChainTx> {
        self.by_hash.get(hash).map(|&i| &self.txs[i])
    }

    /// Transactions paying `address` confirmed inside `[from, to]`.
    pub fn to_address_within(
        &self,
        address: &str,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&ChainTx> {
        self.by_address
            .get(address)
            .into_iter()
            .flatten()
            .map(|&i| &self.txs[i])
            .filter(|tx| tx.confirmed_at >= from && tx.confirmed_at <= to)
            .collect()
    }

    /// Verifies a contractual claim of `claimed_usd`, quoted with an optional
    /// tx hash and a receiving address, against the chain near the contract
    /// completion time (±`window_hours`).
    ///
    /// Resolution order mirrors the manual procedure: an explicit hash is
    /// authoritative if present; otherwise the address is scanned for the
    /// closest transaction in the window.
    pub fn verify(
        &self,
        claimed_usd: f64,
        tx_hash: Option<&str>,
        address: &str,
        completed_at: Timestamp,
        window_hours: f64,
    ) -> Verdict {
        let tx = match tx_hash.and_then(|h| self.by_hash(h)) {
            Some(tx) => Some(tx),
            None => {
                let from = completed_at.plus_hours(-window_hours);
                let to = completed_at.plus_hours(window_hours);
                self.to_address_within(address, from, to)
                    .into_iter()
                    .min_by_key(|tx| (tx.confirmed_at.minutes() - completed_at.minutes()).abs())
            }
        };
        match tx {
            None => Verdict::NotFound,
            Some(tx) => {
                let denom = claimed_usd.abs().max(f64::EPSILON);
                if ((tx.value_usd - claimed_usd) / denom).abs() <= CONFIRM_TOLERANCE {
                    Verdict::Confirmed
                } else {
                    Verdict::Mismatch { observed_usd: tx.value_usd }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_time::Date;

    fn ts(h: u8) -> Timestamp {
        Timestamp::at(Date::from_ymd(2020, 1, 10), h, 0)
    }

    fn ledger() -> Ledger {
        let mut l = Ledger::new();
        l.insert(ChainTx {
            hash: "aa".repeat(32),
            to_address: "1AddrOne".into(),
            value_usd: 1000.0,
            confirmed_at: ts(12),
        });
        l.insert(ChainTx {
            hash: "bb".repeat(32),
            to_address: "1AddrOne".into(),
            value_usd: 200.0,
            confirmed_at: ts(18),
        });
        l
    }

    #[test]
    fn hash_lookup_wins() {
        let l = ledger();
        let v = l.verify(1000.0, Some(&"aa".repeat(32)), "1AddrOne", ts(23), 1.0);
        assert_eq!(v, Verdict::Confirmed);
    }

    #[test]
    fn address_scan_picks_closest_in_window() {
        let l = ledger();
        // Near 18:00, the $200 tx is closest: a $1000 claim is a mismatch.
        let v = l.verify(1000.0, None, "1AddrOne", ts(19), 6.0);
        assert_eq!(v, Verdict::Mismatch { observed_usd: 200.0 });
    }

    #[test]
    fn tolerance_band() {
        let l = ledger();
        assert_eq!(
            l.verify(1080.0, Some(&"aa".repeat(32)), "x", ts(12), 1.0),
            Verdict::Confirmed,
            "8% over is within tolerance"
        );
        assert_eq!(
            l.verify(1250.0, Some(&"aa".repeat(32)), "x", ts(12), 1.0),
            Verdict::Mismatch { observed_usd: 1000.0 },
        );
    }

    #[test]
    fn outside_window_is_not_found() {
        let l = ledger();
        let v = l.verify(1000.0, None, "1AddrOne", ts(23), 1.0);
        assert_eq!(v, Verdict::NotFound);
        let v = l.verify(1000.0, None, "1Unknown", ts(12), 100.0);
        assert_eq!(v, Verdict::NotFound);
    }

    #[test]
    #[should_panic]
    fn duplicate_hash_panics() {
        let mut l = ledger();
        l.insert(ChainTx {
            hash: "aa".repeat(32),
            to_address: "1X".into(),
            value_usd: 1.0,
            confirmed_at: ts(1),
        });
    }

    #[test]
    fn reindex_restores_lookups() {
        let l = ledger();
        let json = serde_json::to_string(&l).unwrap();
        let back: Ledger = serde_json::from_str(&json).unwrap();
        assert!(back.by_hash(&"aa".repeat(32)).is_none(), "indexes not serialised");
        let back = back.reindex();
        assert!(back.by_hash(&"aa".repeat(32)).is_some());
    }

    #[test]
    fn fingerprint_survives_round_trip_and_tracks_content() {
        let l = ledger();
        let fp = l.fingerprint();
        let json = serde_json::to_string(&l).unwrap();
        let back: Ledger = serde_json::from_str::<Ledger>(&json).unwrap().reindex();
        assert_eq!(back.fingerprint(), fp);

        let mut grown = l.clone();
        grown.insert(ChainTx {
            hash: "ff".repeat(32),
            to_address: "1Y".into(),
            value_usd: 2.0,
            confirmed_at: ts(2),
        });
        assert_ne!(grown.fingerprint(), fp);
        assert_ne!(Ledger::new().fingerprint(), fp);
    }
}
