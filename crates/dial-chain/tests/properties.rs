//! Property-based tests for the simulated ledger.

use dial_chain::{ChainTx, HashGen, Ledger, Verdict};
use dial_time::Timestamp;
use proptest::prelude::*;

proptest! {
    /// Every inserted transaction is retrievable by hash and by address
    /// within its own window.
    #[test]
    fn insert_lookup_round_trip(values in prop::collection::vec((1.0f64..1e5, 0i64..1_000_000), 1..60)) {
        let mut gen = HashGen::new(7);
        let mut ledger = Ledger::new();
        let mut txs = Vec::new();
        for (value, minutes) in &values {
            let tx = ChainTx {
                hash: gen.tx_hash(),
                to_address: gen.address(),
                value_usd: *value,
                confirmed_at: Timestamp::from_minutes(*minutes),
            };
            ledger.insert(tx.clone());
            txs.push(tx);
        }
        prop_assert_eq!(ledger.len(), txs.len());
        for tx in &txs {
            prop_assert_eq!(ledger.by_hash(&tx.hash), Some(tx));
            let found = ledger.to_address_within(
                &tx.to_address,
                tx.confirmed_at.plus_minutes(-1),
                tx.confirmed_at.plus_minutes(1),
            );
            prop_assert!(found.iter().any(|t| t.hash == tx.hash));
        }
    }

    /// Verification verdicts are consistent with the tolerance band: a
    /// claim equal to the on-chain value confirms, a claim 3x off
    /// mismatches, and an unknown hash with an unknown address is NotFound.
    #[test]
    fn verdict_consistency(value in 1.0f64..1e5, minutes in 0i64..1_000_000) {
        let mut gen = HashGen::new(9);
        let mut ledger = Ledger::new();
        let hash = gen.tx_hash();
        let address = gen.address();
        let at = Timestamp::from_minutes(minutes);
        ledger.insert(ChainTx {
            hash: hash.clone(),
            to_address: address.clone(),
            value_usd: value,
            confirmed_at: at,
        });
        prop_assert_eq!(ledger.verify(value, Some(&hash), &address, at, 1.0), Verdict::Confirmed);
        match ledger.verify(value * 3.0, Some(&hash), &address, at, 1.0) {
            Verdict::Mismatch { observed_usd } => prop_assert!((observed_usd - value).abs() < 1e-9),
            other => prop_assert!(false, "expected mismatch, got {other:?}"),
        }
        prop_assert_eq!(
            ledger.verify(value, None, "1UnknownAddress", at, 1.0),
            Verdict::NotFound
        );
    }

    /// Serde round trip preserves the ledger after reindexing.
    #[test]
    fn serde_round_trip(n in 0usize..30) {
        let mut gen = HashGen::new(3);
        let mut ledger = Ledger::new();
        for i in 0..n {
            ledger.insert(ChainTx {
                hash: gen.tx_hash(),
                to_address: gen.address(),
                value_usd: (i + 1) as f64,
                confirmed_at: Timestamp::from_minutes(i as i64 * 60),
            });
        }
        let json = serde_json::to_string(&ledger).unwrap();
        let back: Ledger = serde_json::from_str(&json).unwrap();
        let back = back.reindex();
        prop_assert_eq!(back.len(), ledger.len());
    }
}
