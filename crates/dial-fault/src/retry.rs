//! A seeded jittered-exponential-backoff retry client.
//!
//! The usual retry loop draws jitter from the wall clock or a global
//! RNG, which makes every test that exercises it flaky by construction.
//! Here the jitter for attempt `k` is a pure function of `(seed, k)`:
//! the *schedule* of a policy is fixed data you can assert on, while
//! still spreading load in production (every caller picks its own seed).

use crate::splitmix64;
use std::time::Duration;

/// Backoff shape: `base * 2^attempt`, capped at `max_delay`, each delay
/// then scaled into `[1 - jitter, 1]` by the seeded hash.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `3` means try, retry, retry).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound for any single delay.
    pub max_delay: Duration,
    /// Fraction of each delay subject to jitter, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A sensible test/bench default: 4 attempts, 10ms base, 200ms cap,
    /// half of each delay jittered.
    pub fn quick(seed: u64) -> Self {
        Self {
            max_attempts: 4,
            base: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            jitter: 0.5,
            seed,
        }
    }

    /// The delay slept after failed attempt `attempt` (zero-based).
    /// Deterministic: two policies with equal fields agree everywhere.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_delay);
        // Hash → [0, 1): the jittered delay is capped * (1 - jitter * u).
        let u = (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * u;
        capped.mul_f64(scale)
    }

    /// The full backoff schedule (delays between the `max_attempts`
    /// tries), for assertions and logs.
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_attempts.saturating_sub(1)).map(|a| self.delay(a)).collect()
    }

    /// Calls `op` (which receives the zero-based attempt index) until it
    /// succeeds or attempts run out, sleeping the scheduled delay between
    /// tries. Returns the first success or the last error.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(self.delay(attempt));
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = RetryPolicy::quick(1).schedule();
        let b = RetryPolicy::quick(1).schedule();
        let c = RetryPolicy::quick(2).schedule();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn delays_grow_and_respect_the_cap() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
            jitter: 0.0,
            seed: 0,
        };
        // Without jitter the shape is exactly base * 2^k capped at 50ms.
        let sched = p.schedule();
        assert_eq!(sched[0], Duration::from_millis(10));
        assert_eq!(sched[1], Duration::from_millis(20));
        assert_eq!(sched[2], Duration::from_millis(40));
        assert!(sched[3..].iter().all(|d| *d == Duration::from_millis(50)));
    }

    #[test]
    fn jitter_only_shrinks_delays() {
        let p = RetryPolicy { jitter: 1.0, ..RetryPolicy::quick(99) };
        for (a, d) in p.schedule().into_iter().enumerate() {
            let unjittered = RetryPolicy { jitter: 0.0, ..p.clone() }.delay(a as u32);
            assert!(d <= unjittered, "jitter must never extend the wait");
        }
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..RetryPolicy::quick(5)
        };
        let mut calls = 0u32;
        let out: Result<u32, &str> = p.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err("not yet")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_surfaces_the_last_error_when_exhausted() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            jitter: 0.0,
            seed: 0,
        };
        let mut calls = 0u32;
        let out: Result<(), u32> = p.run(|attempt| {
            calls += 1;
            Err(attempt)
        });
        assert_eq!(out, Err(2), "the final attempt's error wins");
        assert_eq!(calls, 3);
    }
}
