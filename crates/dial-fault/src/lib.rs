//! dial-fault: deterministic fault injection for the serve/par stack.
//!
//! Production hardening needs failures on demand, and *replayable*
//! failures at that: a chaos test that fires on a wall-clock coin flip
//! cannot be debugged. Everything here is therefore seeded and
//! counter-driven — a [`ChaosPlan`] names the injection points it wants
//! to perturb and the decision of whether hit *k* at point *p* fires is a
//! pure function of `(seed, p, k)`. Two runs that drive the same event
//! sequence through the stack observe byte-identical fault sequences.
//!
//! Three modules:
//!
//! 1. This root — the [`ChaosPlan`] / [`FaultPoint`] / [`inject`] layer.
//!    Injection sites in `dial-serve` (socket reads/writes, handlers, the
//!    result cache) and `dial-par` (chunk execution, task queues) call
//!    [`inject`] with their point; the call is a single relaxed atomic
//!    load when no plan is installed, so production pays nothing.
//! 2. [`deadline`] — a thread-local request deadline budget with
//!    cooperative checkpoints, shared by the HTTP layer, the engine, and
//!    the pool's chunk boundaries.
//! 3. [`retry`] — a jittered-exponential-backoff retry client whose
//!    jitter comes from the seed, not the clock, so tests exercising
//!    retries stay deterministic.
//!
//! # Installing a plan
//!
//! [`install`] swaps the process-global plan and returns a guard that
//! restores the previous state on drop. Installation is process-global by
//! design (injection sites live in crates that cannot see a per-server
//! handle); tests that install plans must serialise themselves — the
//! chaos suite holds one shared mutex across its tests.

pub mod deadline;
pub mod retry;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Panic message used by injected worker panics; exposed so layers above
/// can distinguish injected chaos from organic bugs in assertions.
pub const INJECTED_PANIC: &str = "dial-fault: injected worker panic";

/// Named places in the stack where faults can fire. The numeric value
/// indexes per-point counters and feeds the seeded fire decision, so the
/// order here is part of a plan's replay identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// dial-serve: before each socket read while parsing a request head.
    SlowRead = 0,
    /// dial-serve: while writing a response (truncates the write).
    TruncWrite = 1,
    /// dial-serve: after the request head parses, before routing.
    HandlerStall = 2,
    /// dial-serve: a tampered insert attempted against the result cache.
    CachePoison = 3,
    /// dial-par: at the start of a map chunk / join arm (panics).
    WorkerPanic = 4,
    /// dial-par: before a task is enqueued on the pool.
    QueueStall = 5,
    /// dial-serve: while draining an ingest batch body (delays the read).
    IngestStall = 6,
    /// dial-stream: inside a watermark seal, before the commit (panics).
    SealPanic = 7,
    /// dial-store: while appending a sealed batch (writes only a prefix
    /// of the batch and skips the fsync — a simulated power cut).
    TornWrite = 8,
    /// dial-store: before the fsync that makes a sealed batch durable.
    FsyncStall = 9,
    /// dial-store: at the top of a checkpoint write, before any state is
    /// touched (panics).
    CheckpointPanic = 10,
    /// dial-replicate: before a follower fetches a sync batch from its
    /// leader (delays the fetch — a slow or congested leader).
    SyncStall = 11,
    /// dial-store: while exporting a sealed batch for replication (flips
    /// one byte so the follower's CRC/fingerprint verification must
    /// reject the fetch).
    SegmentCorrupt = 12,
}

/// Number of distinct [`FaultPoint`]s (sizes the counter arrays).
const POINTS: usize = 13;

impl FaultPoint {
    /// Stable name used by the `--chaos` spec and in event logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::SlowRead => "slow_read",
            FaultPoint::TruncWrite => "trunc_write",
            FaultPoint::HandlerStall => "stall",
            FaultPoint::CachePoison => "poison",
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::QueueStall => "queue_stall",
            FaultPoint::IngestStall => "ingest_stall",
            FaultPoint::SealPanic => "seal_panic",
            FaultPoint::TornWrite => "torn_write",
            FaultPoint::FsyncStall => "fsync_stall",
            FaultPoint::CheckpointPanic => "ckpt_panic",
            FaultPoint::SyncStall => "sync_stall",
            FaultPoint::SegmentCorrupt => "segment_corrupt",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "slow_read" => FaultPoint::SlowRead,
            "trunc_write" => FaultPoint::TruncWrite,
            "stall" => FaultPoint::HandlerStall,
            "poison" => FaultPoint::CachePoison,
            "worker_panic" => FaultPoint::WorkerPanic,
            "queue_stall" => FaultPoint::QueueStall,
            "ingest_stall" => FaultPoint::IngestStall,
            "seal_panic" => FaultPoint::SealPanic,
            "torn_write" => FaultPoint::TornWrite,
            "fsync_stall" => FaultPoint::FsyncStall,
            "ckpt_panic" => FaultPoint::CheckpointPanic,
            "sync_stall" => FaultPoint::SyncStall,
            "segment_corrupt" => FaultPoint::SegmentCorrupt,
            _ => return None,
        })
    }
}

/// When a rule fires, as a pure function of the per-point hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every `n`-th hit (hits 1, n+1 are misses; hit `n` fires).
    Nth(u64),
    /// Fire on `pct`% of hits, chosen by hashing `(seed, point, hit)`.
    Rate(u8),
}

/// One fault rule: where, when, and with what parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The injection point this rule watches.
    pub point: FaultPoint,
    /// When the rule fires.
    pub trigger: Trigger,
    /// Delay applied by `slow_read` / `stall` / `queue_stall` fires.
    pub delay_ms: u64,
    /// Bytes kept by a `trunc_write` fire.
    pub keep_bytes: usize,
    /// Maximum number of fires (`None` = unlimited); lets a test inject a
    /// burst and then observe clean behaviour under the same install.
    pub limit: Option<u64>,
}

/// What an injection site should do when its point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for this long before proceeding.
    Delay(Duration),
    /// Panic with [`INJECTED_PANIC`].
    Panic,
    /// Write only the first `n` bytes of the response, then stop.
    Truncate(usize),
    /// Attempt a tampered cache insert (the cache must reject it).
    Poison,
    /// Flip one byte at this offset in an outgoing sealed batch (the
    /// receiver's CRC verification must catch it).
    Corrupt(usize),
}

/// One recorded fire, in process-global order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The point that fired.
    pub point: FaultPoint,
    /// Zero-based hit index at that point when it fired.
    pub hit: u64,
    /// The action the site was told to take.
    pub action: FaultAction,
}

/// A seeded, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed feeding every rate decision (and the event log identity).
    pub seed: u64,
    /// The rules, consulted in order; the first matching rule wins.
    pub rules: Vec<FaultRule>,
}

impl ChaosPlan {
    /// Parses the compact spec used by `dial serve --chaos`.
    ///
    /// Grammar: `;`-separated tokens. `seed=N` sets the seed; every other
    /// token is a rule `point@N` (every N-th hit) or `point%P` (P% of
    /// hits), optionally followed by `:delay=MS`, `:bytes=K`, `:limit=L`.
    ///
    /// ```
    /// let plan = dial_fault::ChaosPlan::parse(
    ///     "seed=7;slow_read@2:delay=150;trunc_write@1:bytes=20:limit=1",
    /// )
    /// .unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.rules.len(), 2);
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for token in spec.split(';').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(v) = token.strip_prefix("seed=") {
                seed = v.parse().map_err(|_| format!("bad seed in chaos spec: {token:?}"))?;
                continue;
            }
            let mut parts = token.split(':');
            let head = parts.next().expect("split yields at least one part");
            let (name, trigger) = if let Some((name, n)) = head.split_once('@') {
                let n: u64 = n.parse().map_err(|_| format!("bad @N in chaos rule {token:?}"))?;
                if n == 0 {
                    return Err(format!("@N must be >= 1 in chaos rule {token:?}"));
                }
                (name, Trigger::Nth(n))
            } else if let Some((name, p)) = head.split_once('%') {
                let p: u8 = p.parse().map_err(|_| format!("bad %P in chaos rule {token:?}"))?;
                if p > 100 {
                    return Err(format!("%P must be <= 100 in chaos rule {token:?}"));
                }
                (name, Trigger::Rate(p))
            } else {
                (head, Trigger::Nth(1))
            };
            let point = FaultPoint::from_name(name)
                .ok_or_else(|| format!("unknown chaos point {name:?} in {token:?}"))?;
            let mut rule = FaultRule { point, trigger, delay_ms: 100, keep_bytes: 16, limit: None };
            for opt in parts {
                let (k, v) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("bad option {opt:?} in chaos rule {token:?}"))?;
                let parsed: u64 =
                    v.parse().map_err(|_| format!("bad value {v:?} in chaos rule {token:?}"))?;
                match k {
                    "delay" => rule.delay_ms = parsed,
                    "bytes" => rule.keep_bytes = parsed as usize,
                    "limit" => rule.limit = Some(parsed),
                    _ => return Err(format!("unknown option {k:?} in chaos rule {token:?}")),
                }
            }
            rules.push(rule);
        }
        Ok(Self { seed, rules })
    }
}

/// Live state of an installed plan: the per-point hit/fire counters and
/// the ordered event log.
struct Chaos {
    plan: ChaosPlan,
    hits: [AtomicU64; POINTS],
    /// Fires per *rule* (not per point), for `limit` enforcement.
    fires: Vec<AtomicU64>,
    events: Mutex<Vec<FaultEvent>>,
}

impl Chaos {
    fn new(plan: ChaosPlan) -> Self {
        let fires = plan.rules.iter().map(|_| AtomicU64::new(0)).collect();
        Self { plan, hits: Default::default(), fires, events: Mutex::new(Vec::new()) }
    }

    fn inject(&self, point: FaultPoint) -> Option<FaultAction> {
        let hit = self.hits[point as usize].fetch_add(1, Ordering::SeqCst);
        let (rule_idx, rule) =
            self.plan.rules.iter().enumerate().find(|(_, r)| r.point == point)?;
        let fires = match rule.trigger {
            Trigger::Nth(n) => (hit + 1).is_multiple_of(n),
            Trigger::Rate(pct) => {
                splitmix64(self.plan.seed ^ ((point as u64) << 32) ^ hit) % 100 < pct as u64
            }
        };
        if !fires {
            return None;
        }
        if let Some(limit) = rule.limit {
            // Claim one of the `limit` fire slots; losing the claim means
            // the rule is exhausted and this hit passes through clean.
            let claimed = self.fires[rule_idx]
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| (f < limit).then_some(f + 1))
                .is_ok();
            if !claimed {
                return None;
            }
        } else {
            self.fires[rule_idx].fetch_add(1, Ordering::SeqCst);
        }
        let action = match point {
            FaultPoint::SlowRead
            | FaultPoint::HandlerStall
            | FaultPoint::QueueStall
            | FaultPoint::IngestStall
            | FaultPoint::FsyncStall
            | FaultPoint::SyncStall => FaultAction::Delay(Duration::from_millis(rule.delay_ms)),
            FaultPoint::TruncWrite | FaultPoint::TornWrite => {
                FaultAction::Truncate(rule.keep_bytes)
            }
            // `bytes=` doubles as the corruption offset for this point.
            FaultPoint::SegmentCorrupt => FaultAction::Corrupt(rule.keep_bytes),
            FaultPoint::WorkerPanic | FaultPoint::SealPanic | FaultPoint::CheckpointPanic => {
                FaultAction::Panic
            }
            FaultPoint::CachePoison => FaultAction::Poison,
        };
        self.events.lock().expect("chaos event log lock").push(FaultEvent { point, hit, action });
        Some(action)
    }
}

/// Fast path gate: injection sites check this single atomic before
/// touching the `RwLock`, so an uninstrumented process pays one relaxed
/// load per site.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn active() -> &'static RwLock<Option<Arc<Chaos>>> {
    static ACTIVE: OnceLock<RwLock<Option<Arc<Chaos>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| RwLock::new(None))
}

/// Uninstalls the plan it guards on drop, restoring a chaos-free process.
pub struct ChaosGuard {
    _private: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        *active().write().expect("chaos install lock") = None;
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Installs `plan` process-wide (fresh counters and event log) and
/// returns the guard that uninstalls it. Installs are global: concurrent
/// tests must serialise around them.
pub fn install(plan: ChaosPlan) -> ChaosGuard {
    *active().write().expect("chaos install lock") = Some(Arc::new(Chaos::new(plan)));
    ENABLED.store(true, Ordering::SeqCst);
    ChaosGuard { _private: () }
}

/// Consults the installed plan at `point`. `None` (the overwhelmingly
/// common answer) means proceed normally; otherwise the site applies the
/// returned action. Every fire is appended to the event log.
pub fn inject(point: FaultPoint) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let chaos = active().read().expect("chaos install lock").clone()?;
    chaos.inject(point)
}

/// Snapshot of every fault fired so far under the current install, in
/// fire order. Empty when no plan is installed.
pub fn events() -> Vec<FaultEvent> {
    match active().read().expect("chaos install lock").as_ref() {
        Some(chaos) => chaos.events.lock().expect("chaos event log lock").clone(),
        None => Vec::new(),
    }
}

/// Total fires under the current install.
pub fn fired_total() -> u64 {
    match active().read().expect("chaos install lock").as_ref() {
        Some(chaos) => chaos.fires.iter().map(|f| f.load(Ordering::SeqCst)).sum(),
        None => 0,
    }
}

/// SplitMix64: the standard 64-bit finaliser, used for every seeded
/// decision (rate fires, retry jitter). Small, fast, and good enough —
/// this is schedule diversity, not cryptography.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Installs are process-global; every test that installs holds this.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            ChaosPlan::parse("seed=7; slow_read@2:delay=150; trunc_write%10:bytes=20:limit=3")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                point: FaultPoint::SlowRead,
                trigger: Trigger::Nth(2),
                delay_ms: 150,
                keep_bytes: 16,
                limit: None,
            }
        );
        assert_eq!(plan.rules[1].trigger, Trigger::Rate(10));
        assert_eq!(plan.rules[1].keep_bytes, 20);
        assert_eq!(plan.rules[1].limit, Some(3));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["seed=x", "nope@2", "slow_read@0", "slow_read%101", "stall:wat=1", "stall:x"] {
            assert!(ChaosPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn nth_trigger_fires_on_exact_multiples() {
        let _serial = serial();
        let plan = ChaosPlan::parse("stall@3:delay=1").unwrap();
        let _guard = install(plan);
        let fired: Vec<bool> = (0..9).map(|_| inject(FaultPoint::HandlerStall).is_some()).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true],
            "every 3rd hit fires"
        );
        assert_eq!(events().len(), 3);
        assert_eq!(events()[0].hit, 2);
    }

    #[test]
    fn rate_trigger_is_deterministic_per_seed() {
        let _serial = serial();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = install(ChaosPlan::parse(&format!("seed={seed};slow_read%30")).unwrap());
            (0..64).map(|_| inject(FaultPoint::SlowRead).is_some()).collect()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed, same fire pattern");
        assert_ne!(a, c, "different seed perturbs the pattern");
        let rate = a.iter().filter(|f| **f).count();
        assert!((8..=30).contains(&rate), "~30% of 64 hits should fire, got {rate}");
    }

    #[test]
    fn limit_caps_fires_and_then_passes_clean() {
        let _serial = serial();
        let _guard = install(ChaosPlan::parse("worker_panic@1:limit=2").unwrap());
        let fired: Vec<bool> = (0..5).map(|_| inject(FaultPoint::WorkerPanic).is_some()).collect();
        assert_eq!(fired, [true, true, false, false, false]);
        assert_eq!(fired_total(), 2);
    }

    #[test]
    fn uninstall_restores_silence() {
        let _serial = serial();
        {
            let _guard = install(ChaosPlan::parse("stall@1").unwrap());
            assert!(inject(FaultPoint::HandlerStall).is_some());
        }
        assert!(inject(FaultPoint::HandlerStall).is_none());
        assert!(events().is_empty());
    }

    #[test]
    fn points_map_actions_by_kind() {
        let _serial = serial();
        let _guard = install(
            ChaosPlan::parse("slow_read@1:delay=7;trunc_write@1:bytes=3;worker_panic@1;poison@1")
                .unwrap(),
        );
        assert_eq!(
            inject(FaultPoint::SlowRead),
            Some(FaultAction::Delay(Duration::from_millis(7)))
        );
        assert_eq!(inject(FaultPoint::TruncWrite), Some(FaultAction::Truncate(3)));
        assert_eq!(inject(FaultPoint::WorkerPanic), Some(FaultAction::Panic));
        assert_eq!(inject(FaultPoint::CachePoison), Some(FaultAction::Poison));
        assert_eq!(inject(FaultPoint::QueueStall), None, "no rule for queue_stall");
    }
}
