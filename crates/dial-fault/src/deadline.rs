//! Per-request deadline budgets with cooperative cancellation.
//!
//! The HTTP layer stamps a deadline when a request head finishes
//! parsing; the engine carries it onto the worker that runs the
//! experiment; `dial-par` re-establishes it on whichever worker executes
//! each chunk. Long-running code volunteers cancellation by calling
//! [`checkpoint`] — past the deadline it panics with a recognisable
//! payload, the nearest `catch_unwind` (every pool chunk and the
//! engine's run wrapper have one) converts it to a timeout error, and
//! the pool slot frees immediately instead of burning to completion.
//!
//! The budget is a plain thread-local `Instant`: no clock reads happen
//! unless a deadline is actually set, and code outside a request (CLI
//! batch runs, tests) sees `None` and pays one TLS read per checkpoint.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static CURRENT: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Panic payload used by [`checkpoint`]; [`is_deadline_panic`] matches it
/// even after `dial-par` flattens payloads to their message strings.
pub const DEADLINE_PANIC: &str = "dial-fault: request deadline exceeded";

/// The deadline governing this thread, if any.
pub fn current() -> Option<Instant> {
    CURRENT.with(Cell::get)
}

/// Time left in the budget; `None` when no deadline is set.
pub fn remaining() -> Option<Duration> {
    current().map(|d| d.saturating_duration_since(Instant::now()))
}

/// True when a deadline is set and has passed.
pub fn expired() -> bool {
    current().is_some_and(|d| Instant::now() >= d)
}

/// Runs `f` under `deadline` (restoring the previous budget afterwards,
/// panic or not). When both an inherited and a new deadline exist the
/// *earlier* one wins — a nested scope can only tighten the budget.
pub fn with_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = current();
    let effective = match (prev, deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let _restore = Restore(prev);
    CURRENT.with(|c| c.set(effective));
    f()
}

/// Cooperative cancellation point: past the deadline this panics with
/// [`DEADLINE_PANIC`], unwinding out of the timed-out work so its pool
/// slot frees immediately. A no-op when no deadline is set.
pub fn checkpoint() {
    if expired() {
        std::panic::panic_any(DEADLINE_PANIC.to_string());
    }
}

/// True when `payload` is a [`checkpoint`] panic — either the original
/// `String` payload or the `&str` constant, covering payloads that were
/// re-raised through `dial-par`'s message flattening.
pub fn is_deadline_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    if let Some(s) = payload.downcast_ref::<String>() {
        return s == DEADLINE_PANIC;
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return *s == DEADLINE_PANIC;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn no_deadline_means_free_running() {
        assert_eq!(current(), None);
        assert!(!expired());
        checkpoint(); // must not panic
    }

    #[test]
    fn with_deadline_scopes_and_restores() {
        let d = Instant::now() + Duration::from_secs(60);
        with_deadline(Some(d), || {
            assert_eq!(current(), Some(d));
            assert!(!expired());
            checkpoint();
        });
        assert_eq!(current(), None);
    }

    #[test]
    fn nested_deadlines_keep_the_tighter_budget() {
        let loose = Instant::now() + Duration::from_secs(60);
        let tight = Instant::now() + Duration::from_secs(1);
        with_deadline(Some(loose), || {
            with_deadline(Some(tight), || assert_eq!(current(), Some(tight)));
            // An inner `None` inherits rather than clears.
            with_deadline(None, || assert_eq!(current(), Some(loose)));
            assert_eq!(current(), Some(loose));
        });
    }

    #[test]
    fn checkpoint_panics_past_the_deadline_and_is_recognisable() {
        let past = Instant::now() - Duration::from_millis(1);
        let err = catch_unwind(AssertUnwindSafe(|| with_deadline(Some(past), checkpoint)))
            .expect_err("expired checkpoint must unwind");
        assert!(is_deadline_panic(err.as_ref()));
        // The budget was restored despite the unwind.
        assert_eq!(current(), None);
        // The flattened form (what dial-par re-raises) also matches.
        let flattened: Box<dyn std::any::Any + Send> = Box::new(DEADLINE_PANIC.to_string());
        assert!(is_deadline_panic(flattened.as_ref()));
        let other: Box<dyn std::any::Any + Send> = Box::new("other".to_string());
        assert!(!is_deadline_panic(other.as_ref()));
    }
}
