//! The lint engine: file discovery, the two collection passes, rule
//! dispatch, and suppression application.

use crate::analysis::FileAnalysis;
use crate::report::{Finding, Report};
use crate::rules::{all_rules, GlobalFacts, Rule};
use std::path::{Path, PathBuf};

/// Directory names never descended into. `lint_fixtures` holds files
/// that intentionally violate rules (`tests/lint_fixtures/`); they are
/// linted one-by-one by `tests/lint_gate.rs`, not as part of the tree.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "lint_fixtures"];

/// Engine configuration.
pub struct Config {
    /// Root to scan: a workspace directory or a single `.rs` file.
    pub root: PathBuf,
    /// Restrict the run to one rule id (plus `bare-allow`, which always
    /// runs — unexplained suppressions are never fine).
    pub only_rule: Option<String>,
    /// Apply every rule to every file regardless of crate scope. On by
    /// default when `root` is a single file, which is how fixtures (and
    /// `dial lint path/to/file.rs`) are checked.
    pub force_all: bool,
}

impl Config {
    /// Lints the workspace rooted at `root` with the shipped rules.
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into(), only_rule: None, force_all: false }
    }

    /// Lints one file with every rule active (crate scoping ignored).
    pub fn single_file(path: impl Into<PathBuf>) -> Self {
        Self { root: path.into(), only_rule: None, force_all: true }
    }
}

/// Runs the engine and returns the report.
///
/// Pass 1 lexes every file and collects workspace facts (map-returning
/// function names); pass 2 runs the rules. Files and findings are both
/// processed in sorted order so the linter's own output is deterministic —
/// a determinism linter that diffs against itself would be embarrassing.
pub fn run(config: &Config) -> Result<Report, String> {
    let rules = all_rules();
    if let Some(id) = &config.only_rule {
        let known = rules.iter().any(|r| r.id() == id) || id == "bare-allow";
        if !known {
            let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
            return Err(format!(
                "unknown rule {id:?}; known rules: {}, bare-allow",
                ids.join(", ")
            ));
        }
    }

    let root = &config.root;
    let (files, force_all) = if root.is_file() {
        (vec![root.clone()], true)
    } else if root.is_dir() {
        let mut files = Vec::new();
        collect_rs_files(root, &mut files)?;
        files.sort();
        (files, config.force_all)
    } else {
        return Err(format!("lint root {} does not exist", root.display()));
    };

    let base =
        if root.is_file() { root.parent().map(Path::to_path_buf) } else { Some(root.clone()) };
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|p| {
            let rel = base
                .as_deref()
                .and_then(|b| p.strip_prefix(b).ok())
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            std::fs::read_to_string(p)
                .map(|src| (rel, src))
                .map_err(|e| format!("read {}: {e}", p.display()))
        })
        .collect::<Result<_, _>>()?;

    // Pass 1: lex + index every file, fold workspace facts.
    let analyses: Vec<FileAnalysis<'_>> =
        sources.iter().map(|(rel, src)| FileAnalysis::new(rel, src)).collect();
    let mut facts = GlobalFacts::default();
    for a in &analyses {
        facts.collect(a);
    }

    // Pass 2: rules + suppression diagnostics.
    let mut findings = Vec::new();
    for a in &analyses {
        for rule in &rules {
            if let Some(id) = &config.only_rule {
                if rule.id() != id {
                    continue;
                }
            }
            if force_all || rule.applies(a) {
                rule.check(a, &facts, &mut findings);
            }
        }
        check_allows(a, &rules, &mut findings);
    }
    apply_suppressions(&analyses, &mut findings);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    // A `for (k, v) in map.iter_mut()` header trips both the for-loop and
    // the method detector; one diagnostic per (rule, line) is enough.
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);

    Ok(Report { findings, files_scanned: analyses.len() })
}

/// Emits `bare-allow` diagnostics: an allow with no reason, no rule, or a
/// rule id nothing ships. These are never suppressible — the entire point
/// of the reason requirement is that suppressions stay reviewable.
fn check_allows(file: &FileAnalysis<'_>, rules: &[Box<dyn Rule>], findings: &mut Vec<Finding>) {
    for allow in &file.allows {
        let message = if !rules.iter().any(|r| r.id() == allow.rule) {
            format!("lint:allow names unknown rule {:?}", allow.rule)
        } else if allow.reason.is_none() {
            format!(
                "bare lint:allow({}) without a reason: append `: <why this is safe>`",
                allow.rule
            )
        } else {
            continue;
        };
        findings.push(Finding {
            rule: "bare-allow",
            path: file.rel_path.clone(),
            line: allow.line,
            col: allow.col,
            message,
            snippet: file.snippet(allow.line),
            suppressed: false,
            reason: None,
        });
    }
}

/// Marks findings covered by a reasoned allow on the same line or the
/// line directly above as suppressed.
fn apply_suppressions(analyses: &[FileAnalysis<'_>], findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if f.rule == "bare-allow" {
            continue;
        }
        let Some(file) = analyses.iter().find(|a| a.rel_path == f.path) else { continue };
        let hit = file.allows.iter().find(|a| {
            a.rule == f.rule && a.reason.is_some() && (a.line == f.line || a.line + 1 == f.line)
        });
        if let Some(allow) = hit {
            f.suppressed = true;
            f.reason = allow.reason.clone();
        }
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
