//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules only need a faithful token stream — identifiers, punctuation,
//! and comments with accurate line/column positions — but "faithful" does
//! all the work: a `HashMap` inside a string literal or a commented-out
//! `unwrap()` must not trip a rule, so the lexer has to get the genuinely
//! tricky corners of Rust's lexical grammar right:
//!
//! * raw strings `r"…"`, `r#"…"#` (any number of hashes) and their byte
//!   variants `br#"…"#`,
//! * raw identifiers `r#fn` (which share a prefix with raw strings),
//! * *nested* block comments `/* /* */ */`,
//! * lifetimes `'a` vs. char literals `'a'` (and escapes like `'\''`),
//! * doc comments (`///`, `//!`, `/** */`) — lexed as comments, and
//! * a shebang line `#!/usr/bin/env …` (but not the inner attribute
//!   `#![…]`, which also starts with `#!`).
//!
//! There is no external dependency: crates.io is unreachable in this
//! build environment, so leaning on `syn`/`proc-macro2` was never an
//! option — and the lint only needs lexical structure anyway.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `HashMap`, `r#fn`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char literal: `'a'`, `'\n'`, `'\''`.
    Char,
    /// A byte literal: `b'x'`.
    Byte,
    /// A string literal: `"…"` (escapes handled).
    Str,
    /// A raw string literal: `r"…"` / `r#"…"#` / `br##"…"##`.
    RawStr,
    /// A byte string literal: `b"…"`.
    ByteStr,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// `// …` including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` including nesting and `/** … */` doc comments.
    BlockComment,
    /// A single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct,
    /// A `#!…` interpreter line at byte offset 0.
    Shebang,
}

/// One lexed token: a slice of the source plus its 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl<'a> Token<'a> {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for `.`/`;`/`{` style single-character punctuation.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(ch)
    }

    /// True for any comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Whitespace is skipped; everything else —
/// including comments — is kept, because suppression comments are data.
///
/// The lexer is total: on malformed input (unterminated string, stray
/// byte) it degrades to single-character `Punct` tokens rather than
/// failing, so one broken file cannot take down a whole lint run.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        // A shebang is only a shebang at byte 0 and when not introducing
        // the inner-attribute form `#![…]`.
        if self.bytes.starts_with(b"#!") && self.bytes.get(2) != Some(&b'[') {
            let end = self.find_line_end(0);
            out.push(self.take(end, TokenKind::Shebang));
        }
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[start];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.advance(start + 1);
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    let end = self.find_line_end(start);
                    out.push(self.take(end, TokenKind::LineComment));
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let end = self.block_comment_end(start);
                    out.push(self.take(end, TokenKind::BlockComment));
                }
                b'r' => out.push(self.raw_or_ident(start)),
                b'b' => out.push(self.byte_literal_or_ident(start)),
                b'"' => {
                    let end = self.string_end(start + 1);
                    out.push(self.take(end, TokenKind::Str));
                }
                b'\'' => out.push(self.lifetime_or_char(start)),
                b'0'..=b'9' => {
                    let end = self.number_end(start);
                    out.push(self.take(end, TokenKind::Num));
                }
                _ if is_ident_start(b) => {
                    let end = self.ident_end(start);
                    out.push(self.take(end, TokenKind::Ident));
                }
                _ => {
                    // One UTF-8 scalar per Punct token so multi-byte
                    // characters inside e.g. broken input stay aligned.
                    let ch_len = utf8_len(b);
                    out.push(self.take((start + ch_len).min(self.bytes.len()), TokenKind::Punct));
                }
            }
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Emits the token covering `self.pos..end` and advances past it.
    fn take(&mut self, end: usize, kind: TokenKind) -> Token<'a> {
        let tok = Token { kind, text: &self.src[self.pos..end], line: self.line, col: self.col };
        self.advance(end);
        tok
    }

    /// Moves the cursor to `to`, updating line/col over the skipped bytes.
    fn advance(&mut self, to: usize) {
        while self.pos < to {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if !is_utf8_continuation(self.bytes[self.pos]) {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn find_line_end(&self, from: usize) -> usize {
        self.bytes[from..].iter().position(|b| *b == b'\n').map_or(self.bytes.len(), |i| from + i)
    }

    /// End of a block comment starting at `from` (which points at `/*`).
    /// Handles nesting; an unterminated comment swallows the rest of the
    /// file, matching rustc.
    fn block_comment_end(&self, from: usize) -> usize {
        let mut depth = 0usize;
        let mut i = from;
        while i < self.bytes.len() {
            if self.bytes[i] == b'/' && self.bytes.get(i + 1) == Some(&b'*') {
                depth += 1;
                i += 2;
            } else if self.bytes[i] == b'*' && self.bytes.get(i + 1) == Some(&b'/') {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    return i;
                }
            } else {
                i += 1;
            }
        }
        self.bytes.len()
    }

    /// End of a `"…"` string whose opening quote is at `quote_pos - 1`
    /// (i.e. `from` points at the first content byte).
    fn string_end(&self, from: usize) -> usize {
        let mut i = from;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        self.bytes.len()
    }

    /// `r` can open a raw string `r"…"`/`r#"…"#`, a raw identifier
    /// `r#ident`, or just an ordinary identifier starting with `r`.
    fn raw_or_ident(&mut self, start: usize) -> Token<'a> {
        let mut hashes = 0usize;
        while self.bytes.get(start + 1 + hashes) == Some(&b'#') {
            hashes += 1;
        }
        match self.bytes.get(start + 1 + hashes) {
            Some(b'"') => {
                let end = self.raw_string_end(start + 2 + hashes, hashes);
                self.take(end, TokenKind::RawStr)
            }
            // `r#foo` — exactly one hash followed by an identifier start.
            Some(&b) if hashes == 1 && is_ident_start(b) => {
                let end = self.ident_end(start + 2);
                self.take(end, TokenKind::Ident)
            }
            _ => {
                let end = self.ident_end(start);
                self.take(end, TokenKind::Ident)
            }
        }
    }

    /// `b` can open `b'x'`, `b"…"`, `br#"…"#`, or an identifier.
    fn byte_literal_or_ident(&mut self, start: usize) -> Token<'a> {
        match self.peek(1) {
            Some(b'\'') => {
                let end = self.char_end(start + 2);
                self.take(end, TokenKind::Byte)
            }
            Some(b'"') => {
                let end = self.string_end(start + 2);
                self.take(end, TokenKind::ByteStr)
            }
            Some(b'r') => {
                let mut hashes = 0usize;
                while self.bytes.get(start + 2 + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if self.bytes.get(start + 2 + hashes) == Some(&b'"') {
                    let end = self.raw_string_end(start + 3 + hashes, hashes);
                    self.take(end, TokenKind::RawStr)
                } else {
                    let end = self.ident_end(start);
                    self.take(end, TokenKind::Ident)
                }
            }
            _ => {
                let end = self.ident_end(start);
                self.take(end, TokenKind::Ident)
            }
        }
    }

    /// Scans past the body of a raw string: content starts at `from`, and
    /// the string closes at `"` followed by `hashes` `#`s.
    fn raw_string_end(&self, from: usize, hashes: usize) -> usize {
        let mut i = from;
        while i < self.bytes.len() {
            if self.bytes[i] == b'"' {
                let after = &self.bytes[i + 1..];
                if after.len() >= hashes && after[..hashes].iter().all(|b| *b == b'#') {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        self.bytes.len()
    }

    /// `'` opens either a lifetime (`'a`, `'static`) or a char literal
    /// (`'a'`, `'\n'`). The discriminator: an identifier run after the
    /// quote that is *not* followed by a closing quote is a lifetime.
    fn lifetime_or_char(&mut self, start: usize) -> Token<'a> {
        match self.bytes.get(start + 1) {
            // `'\n'` and friends are always char literals.
            Some(b'\\') => {
                let end = self.char_end(start + 1);
                self.take(end, TokenKind::Char)
            }
            Some(&b) if is_ident_start(b) => {
                let ident_end = self.ident_end(start + 1);
                if self.bytes.get(ident_end) == Some(&b'\'') {
                    self.take(ident_end + 1, TokenKind::Char)
                } else {
                    self.take(ident_end, TokenKind::Lifetime)
                }
            }
            // `'+'`, `' '`, `'é'` … any other single scalar, quoted.
            Some(&b) => {
                let end = start + 1 + utf8_len(b);
                if self.bytes.get(end) == Some(&b'\'') {
                    self.take(end + 1, TokenKind::Char)
                } else {
                    // Stray quote: emit it alone and keep going.
                    self.take(start + 1, TokenKind::Punct)
                }
            }
            None => self.take(start + 1, TokenKind::Punct),
        }
    }

    /// End of a char-literal body beginning at `from` (just past the
    /// opening quote, possibly pointing at a `\`).
    fn char_end(&self, from: usize) -> usize {
        let mut i = from;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'\'' => return i + 1,
                _ => i += 1,
            }
        }
        self.bytes.len()
    }

    fn ident_end(&self, start: usize) -> usize {
        let mut i = start;
        while i < self.bytes.len() && is_ident_continue(self.bytes[i]) {
            i += 1;
        }
        i.max(start + 1)
    }

    /// End of a numeric literal. Accepts digits, `_`, letters (hex digits
    /// and suffixes like `u64`), a single fractional `.` when followed by
    /// a digit (so `1..10` stays two tokens), and a sign right after an
    /// exponent `e`/`E`.
    fn number_end(&self, start: usize) -> usize {
        let mut i = start + 1;
        let mut seen_dot = false;
        while i < self.bytes.len() {
            let b = self.bytes[i];
            if b.is_ascii_alphanumeric() || b == b'_' {
                i += 1;
            } else if b == b'.'
                && !seen_dot
                && self.bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
            {
                seen_dot = true;
                i += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes[i - 1], b'e' | b'E')
                && self.bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
            {
                i += 1;
            } else {
                break;
            }
        }
        i
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_utf8_continuation(b: u8) -> bool {
    b & 0xC0 == 0x80
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
