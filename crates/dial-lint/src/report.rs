//! Findings and report rendering (human-readable and JSON).
//!
//! JSON is rendered by hand: the crate is deliberately dependency-free so
//! it builds first in CI, and the schema is flat enough that an escaper
//! plus `format!` beats pulling in a serializer. The schema is pinned by
//! `tests/cli.rs`; bump `SCHEMA_VERSION` on any shape change.

/// Version stamp emitted in JSON output.
pub const SCHEMA_VERSION: u32 = 1;

/// One diagnostic produced by a rule (or by the suppression checker).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`nondeterministic-iteration`, …, `bare-allow`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do about it.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// True when a reasoned `lint:allow` covers the site.
    pub suppressed: bool,
    /// The allow's reason, when suppressed.
    pub reason: Option<String>,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, sorted by (path, line, col).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not silenced by a reasoned allow. Any of these fail the
    /// run.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Number of active findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of findings silenced by reasoned allows.
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// True when the tree passes.
    pub fn is_clean(&self) -> bool {
        self.active_count() == 0
    }

    /// Human-readable rendering, one block per active finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.active() {
            out.push_str(&format!(
                "{}:{}:{} [{}] {}\n    | {}\n",
                f.path, f.line, f.col, f.rule, f.message, f.snippet
            ));
        }
        out.push_str(&format!(
            "dial-lint: {} file(s) scanned, {} finding(s), {} suppressed\n",
            self.files_scanned,
            self.active_count(),
            self.suppressed_count()
        ));
        out
    }

    /// JSON rendering. Shape:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "files_scanned": 140,
    ///   "active": 2,
    ///   "suppressed": 17,
    ///   "findings": [
    ///     {"rule": "…", "path": "…", "line": 9, "col": 5,
    ///      "message": "…", "snippet": "…", "suppressed": false}
    ///   ]
    /// }
    /// ```
    ///
    /// `findings` carries suppressed entries too (flagged by the
    /// `suppressed` field) so dashboards can audit allow density.
    pub fn render_json(&self) -> String {
        let mut items = Vec::with_capacity(self.findings.len());
        for f in &self.findings {
            let reason = match &f.reason {
                Some(r) => format!(",\"reason\":\"{}\"", escape_json(r)),
                None => String::new(),
            };
            items.push(format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\
                 \"snippet\":\"{}\",\"suppressed\":{}{}}}",
                escape_json(f.rule),
                escape_json(&f.path),
                f.line,
                f.col,
                escape_json(&f.message),
                escape_json(&f.snippet),
                f.suppressed,
                reason
            ));
        }
        format!(
            "{{\"version\":{},\"files_scanned\":{},\"active\":{},\"suppressed\":{},\
             \"findings\":[{}]}}",
            SCHEMA_VERSION,
            self.files_scanned,
            self.active_count(),
            self.suppressed_count(),
            items.join(",")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
