//! Per-file analysis shared by every rule: the token stream plus derived
//! structure — `#[cfg(test)]` spans, statement windows, brace matching,
//! and the parsed `lint:allow` suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// A parsed `// lint:allow(<rule>): <reason>` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id inside the parentheses.
    pub rule: String,
    /// The reason after the trailing `: `; `None` when missing (which is
    /// itself a diagnostic — see `bare-allow`).
    pub reason: Option<String>,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// 1-based column of the comment token.
    pub col: u32,
}

/// One lexed-and-indexed source file, ready for rules to walk.
pub struct FileAnalysis<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The `crates/<dir>` component, e.g. `core` or `dial-serve`; `None`
    /// for files of the root package (`src/`, `tests/`, `examples/`).
    pub crate_dir: Option<String>,
    /// Final path component, e.g. `http.rs`.
    pub file_name: String,
    /// True when the file as a whole is test/bench/example code (lives
    /// under a `tests/`, `benches/` or `examples/` directory).
    pub aux_file: bool,
    /// Full source text.
    pub source: &'a str,
    /// Source split by lines (for snippets), 0-based.
    pub lines: Vec<&'a str>,
    /// The token stream.
    pub tokens: Vec<Token<'a>>,
    /// Token-index ranges `[start, end)` covered by `#[cfg(test)]` items
    /// or `#[test]` functions.
    pub test_ranges: Vec<(usize, usize)>,
    /// All `lint:allow` comments in the file.
    pub allows: Vec<Allow>,
}

impl<'a> FileAnalysis<'a> {
    /// Lexes and indexes one file.
    pub fn new(rel_path: &str, source: &'a str) -> Self {
        let tokens = lex(source);
        let rel_path = rel_path.replace('\\', "/");
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let file_name = rel_path.rsplit('/').next().unwrap_or(&rel_path).to_string();
        let aux_file = rel_path
            .split('/')
            .any(|part| matches!(part, "tests" | "benches" | "examples" | "fixtures"));
        let test_ranges = find_test_ranges(&tokens);
        let allows = parse_allows(&tokens);
        Self {
            rel_path,
            crate_dir,
            file_name,
            aux_file,
            source,
            lines: source.lines().collect(),
            tokens,
            test_ranges,
            allows,
        }
    }

    /// True when token `idx` is inside a `#[cfg(test)]`/`#[test]` span.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|(s, e)| (*s..*e).contains(&idx))
    }

    /// The trimmed source line a token sits on (for finding snippets).
    pub fn snippet(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).map_or(String::new(), |l| l.trim().to_string())
    }

    /// Index of the token closing the brace opened at `open` (which must
    /// be a `{`/`(`/`[` Punct). Comments and literals are single tokens,
    /// so plain depth counting is exact.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.tokens[open].text.chars().next()? {
            '{' => ('{', '}'),
            '(' => ('(', ')'),
            '[' => ('[', ']'),
            _ => return None,
        };
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// The statement window around token `site`: the token range from the
    /// previous `;`/`{`/`}` at bracket depth 0 (exclusive) up to the next
    /// `;` or block-opening `{` at depth 0 (exclusive). Braces nested in
    /// parentheses (closure bodies in call arguments) do not end the
    /// window.
    pub fn statement_window(&self, site: usize) -> (usize, usize) {
        let mut start = site;
        let mut depth = 0i32;
        while start > 0 {
            let t = &self.tokens[start - 1];
            match t.text {
                ")" | "]" if t.kind == TokenKind::Punct => depth += 1,
                "(" | "[" if t.kind == TokenKind::Punct => depth -= 1,
                // Any brace at depth 0 is a statement boundary: `{` opens
                // the enclosing block, `}` closes the *previous* block
                // (for/if/match statement). Inside parentheses a brace
                // belongs to a closure body and does not end the window.
                "{" | "}" if t.kind == TokenKind::Punct && depth == 0 => break,
                ";" if t.kind == TokenKind::Punct && depth == 0 => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            start -= 1;
        }
        let mut end = site;
        let mut depth = 0i32;
        while end < self.tokens.len() {
            let t = &self.tokens[end];
            match t.text {
                "(" | "[" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
                "{" if t.kind == TokenKind::Punct => {
                    if depth == 0 {
                        break;
                    }
                    depth += 1;
                }
                "}" if t.kind == TokenKind::Punct => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" if t.kind == TokenKind::Punct && depth == 0 => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            end += 1;
        }
        (start, end)
    }
}

/// Scans for `#[cfg(test)]` items and `#[test]` functions and returns the
/// token ranges of their bodies (attribute through closing brace).
fn find_test_ranges(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(len) = test_attr_len(tokens, i) {
            // Skip any further attributes between the test attribute and
            // the item it decorates.
            let mut j = i + len;
            while j < tokens.len() && tokens[j].is_punct('#') {
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                    match matching_close_at(tokens, j + 1, '[', ']') {
                        Some(close) => j = close + 1,
                        None => break,
                    }
                } else {
                    break;
                }
            }
            // Find the item's opening brace and cover through its close.
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                if let Some(close) = matching_close_at(tokens, j, '{', '}') {
                    out.push((i, close + 1));
                    i = close + 1;
                    continue;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// If tokens at `i` begin `#[cfg(test)]` or `#[test]`, the token count of
/// that attribute.
fn test_attr_len(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let close = matching_close_at(tokens, i + 1, '[', ']')?;
    let inner: Vec<&str> = tokens[i + 2..close].iter().map(|t| t.text).collect();
    let is_test =
        inner == ["test"] || (inner.len() >= 4 && inner[0] == "cfg" && inner.contains(&"test"));
    is_test.then_some(close - i + 1)
}

fn matching_close_at(tokens: &[Token<'_>], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Parses every `lint:allow` comment in the token stream.
///
/// Grammar: `// lint:allow(<rule-id>): <reason>` — the `(<rule-id>)` is
/// required, the `: <reason>` tail is what makes a suppression reviewable
/// and its absence is reported as a `bare-allow` diagnostic.
fn parse_allows(tokens: &[Token<'_>]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment {
            continue;
        }
        // Doc comments are documentation, not suppressions: this file's
        // own rustdoc may *describe* the grammar without invoking it.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("lint:allow") else { continue };
        let rest = &t.text[at + "lint:allow".len()..];
        let (rule, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((rule, tail)) => (rule.trim().to_string(), tail),
            // `lint:allow` not followed by `(…)`: a prose mention, not a
            // suppression attempt.
            None => continue,
        };
        let reason = tail
            .trim_start()
            .strip_prefix(':')
            .map(str::trim)
            // Block comments may close on the same line; drop the `*/`.
            .map(|r| r.trim_end_matches("*/").trim())
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        out.push(Allow { rule, reason, line: t.line, col: t.col });
    }
    out
}
