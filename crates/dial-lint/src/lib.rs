//! dial-lint: in-tree static analysis for the dial workspace.
//!
//! Every headline number this system produces (era growth rates, Table 5
//! USD totals, LTA class flows) must be byte-reproducible across seeds,
//! thread counts, and live-vs-batch modes. Two shipped PRs each carried a
//! real `HashMap`-iteration-order bug that only an expensive downstream
//! equivalence gate happened to catch. This crate moves that bug class to
//! CI time: a hand-rolled Rust lexer (crates.io is unreachable here, and
//! lexical structure is all the rules need), a rule framework that walks
//! every workspace `.rs` file, and a suppression grammar that keeps the
//! false-positive escape hatch reviewable.
//!
//! Rule catalogue (see DESIGN §14 for the full writeup):
//!
//! | id | guards |
//! |----|--------|
//! | `nondeterministic-iteration` | map iteration order in result crates |
//! | `unwrap-in-serve`            | panics on the dial-serve request path |
//! | `wall-clock-in-deterministic`| hidden time inputs in seeded crates |
//! | `missing-checkpoint`         | deadline cooperation in long loops |
//! | `bare-allow`                 | suppressions without a reason |
//!
//! Entry points: [`engine::run`] with an [`engine::Config`], rendering via
//! [`report::Report`]. The `dial lint` CLI subcommand, the `ci.sh` gate,
//! and `tests/lint_gate.rs` are thin wrappers over exactly this API.

pub mod analysis;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{run, Config};
pub use report::{Finding, Report};

#[cfg(test)]
mod tests {
    use crate::lexer::{lex, TokenKind};

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text.to_string())).collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r####"let x = r#"for k in map.keys() { "quoted" }"#;"####);
        let raw: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.contains("map.keys()"));
        // No Ident token leaked out of the raw string body.
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "keys"));
    }

    #[test]
    fn raw_strings_with_more_hashes_and_byte_variant() {
        let toks = kinds(r###"br##"a "# b"## "tail""###);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[0].1, r###"br##"a "# b"##"###);
        assert_eq!(toks[1].0, TokenKind::Str);
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.ends_with("still comment */"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn char_escapes_and_static_lifetime() {
        let toks = kinds(r"let q = '\''; let s: &'static str = x; let nl = '\n';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, r"'\''");
        assert_eq!(chars[1].1, r"'\n'");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"bytes"; let b2 = b'x'; let c = b;"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::ByteStr && t == "b\"bytes\""));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Byte && t == "b'x'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "b"));
    }

    #[test]
    fn shebang_is_one_token_but_inner_attribute_is_not() {
        let toks = kinds("#!/usr/bin/env run-cargo-script\nfn main() {}");
        assert_eq!(toks[0].0, TokenKind::Shebang);
        assert_eq!(toks[1].1, "fn");

        let toks = kinds("#![allow(dead_code)]\nfn main() {}");
        assert_eq!(toks[0].0, TokenKind::Punct);
        assert_eq!(toks[0].1, "#");
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds(r##"let r#fn = 1; let s = r#"raw"#;"##);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::RawStr && t == r##"r#"raw"#"##));
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// outer docs\n//! inner docs\n/** block docs */\nstruct S;");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].0, TokenKind::BlockComment);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "struct"));
    }

    #[test]
    fn numbers_do_not_eat_range_dots_or_method_calls() {
        let toks = kinds("for i in 1..10 { x = 2.5e-3; y = 1.max(2); }");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Num).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, ["1", "10", "2.5e-3", "1", "2"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn positions_are_one_based_and_line_accurate() {
        let toks = lex("fn a() {}\n  let b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!((b.line, b.col), (2, 7));
    }
}
