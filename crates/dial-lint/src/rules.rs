//! The rule catalogue. Each rule is a token-stream walk over one file,
//! scoped to the crates where its invariant is load-bearing (DESIGN §14).
//!
//! Rules are heuristic by design: they over-approximate, and intentional
//! sites are silenced with a *reasoned* `// lint:allow(<rule>): why`
//! comment — an unexplained allow is itself a diagnostic. The payoff is
//! that the two nondeterminism bugs that shipped in earlier PRs (the LTA
//! top-3 tie-break and the Table 5 `extrapolated_total_usd` float sum,
//! both `HashMap`-iteration-order bugs) become CI failures instead of
//! equivalence-gate archaeology.

use crate::analysis::FileAnalysis;
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use std::collections::BTreeSet;

/// Crates whose outputs feed paper tables/figures; iteration order there
/// is result order.
const RESULT_CRATES: &[&str] = &["core", "dial-stats", "dial-stream", "dial-model", "dial-graph"];

/// Crates that must be replayable from seeds alone: wall-clock reads are
/// hidden inputs.
const DETERMINISTIC_CRATES: &[&str] =
    &["core", "dial-stats", "dial-stream", "dial-sim", "dial-store"];

/// dial-serve modules on the request path; a panic here kills a worker
/// mid-request instead of answering 5xx.
const SERVE_PATH_FILES: &[&str] = &["http.rs", "engine.rs", "cache.rs", "scheduler.rs"];

/// Crates whose loops must cooperate with `dial_fault` deadlines.
const CHECKPOINT_CRATES: &[&str] = &["dial-serve", "dial-par"];

/// R4 fires on loop bodies longer than this many source lines.
pub const CHECKPOINT_LOOP_LINES: usize = 20;

/// Iterator-producing methods whose order is the receiver's order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Workspace-wide facts collected before any rule runs.
#[derive(Debug, Default)]
pub struct GlobalFacts {
    /// Names of functions (in any scanned file) whose return type mentions
    /// `HashMap`/`HashSet` — calling one and iterating the result is as
    /// order-sensitive as iterating a local map.
    pub map_returning_fns: BTreeSet<String>,
}

impl GlobalFacts {
    /// Harvests facts from one file (called for every file, pass 1).
    pub fn collect(&mut self, file: &FileAnalysis<'_>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            // Scan the signature up to the body `{` or a `;` (trait decl),
            // looking for a map type after `->`.
            let mut j = i + 2;
            let mut after_arrow = false;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" if depth == 0 => break,
                    "-" if toks.get(j + 1).is_some_and(|n| n.is_punct('>')) && depth == 0 => {
                        after_arrow = true;
                    }
                    "HashMap" | "HashSet" if after_arrow && t.kind == TokenKind::Ident => {
                        self.map_returning_fns.insert(name.text.to_string());
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// A single lint rule.
pub trait Rule {
    /// Stable rule id, used in output and in `lint:allow(<id>)`.
    fn id(&self) -> &'static str;
    /// One-line description for `dial lint --rules`.
    fn describe(&self) -> &'static str;
    /// Whether the rule's invariant applies to this file at all. Ignored
    /// when the engine runs in force-all mode (single-file / fixtures).
    fn applies(&self, file: &FileAnalysis<'_>) -> bool;
    /// Walks the file and appends findings.
    fn check(&self, file: &FileAnalysis<'_>, facts: &GlobalFacts, out: &mut Vec<Finding>);
}

/// The shipped rule set, in catalogue order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NondeterministicIteration),
        Box::new(UnwrapInServe),
        Box::new(WallClockInDeterministic),
        Box::new(MissingCheckpoint),
    ]
}

fn finding(
    rule: &'static str,
    file: &FileAnalysis<'_>,
    tok: &Token<'_>,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: file.snippet(tok.line),
        suppressed: false,
        reason: None,
    }
}

// --------------------------------------------------------------------
// R1: nondeterministic-iteration
// --------------------------------------------------------------------

/// Flags iteration over `HashMap`/`HashSet` in result-producing crates
/// unless the surrounding statement establishes an order (a `sort*` call
/// or a BTree collection) or the site carries a reasoned allow.
pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn describe(&self) -> &'static str {
        "HashMap/HashSet iteration in result-producing crates without an established order"
    }

    fn applies(&self, file: &FileAnalysis<'_>) -> bool {
        file.crate_dir.as_deref().is_some_and(|c| RESULT_CRATES.contains(&c)) && !file.aux_file
    }

    fn check(&self, file: &FileAnalysis<'_>, facts: &GlobalFacts, out: &mut Vec<Finding>) {
        let maps = local_map_idents(file, facts);
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            // `.values()` / `.iter()` / … on a map-typed receiver.
            if toks[i].is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident && ITER_METHODS.contains(&t.text))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                let (is_map, via) = receiver_is_map(file, i, &maps, facts);
                if is_map && !statement_establishes_order(file, i) {
                    out.push(finding(
                        self.id(),
                        file,
                        &toks[i + 1],
                        format!(
                            ".{}() iterates `{via}` in hash order; sort the result, use a \
                             BTree collection, or justify with lint:allow",
                            toks[i + 1].text
                        ),
                    ));
                }
            }
            // `for pat in <expr-with-map> {`.
            if toks[i].is_ident("for") {
                if let Some((expr_start, expr_end)) = for_loop_expr(file, i) {
                    if let Some(via) = window_mentions_map(file, expr_start, expr_end, &maps, facts)
                    {
                        if !range_establishes_order(toks, expr_start, expr_end) {
                            out.push(finding(
                                self.id(),
                                file,
                                &toks[i],
                                format!(
                                    "for-loop over `{via}` in hash order; iterate sorted keys, \
                                     use a BTree collection, or justify with lint:allow"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Identifiers in this file that name `HashMap`/`HashSet` values: `let`
/// bindings, fn parameters, and struct fields with a map type annotation,
/// plus `let` patterns whose initialiser visibly builds or returns a map.
fn local_map_idents(file: &FileAnalysis<'_>, facts: &GlobalFacts) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut maps = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : <type…>` where the type mentions HashMap/HashSet before
        // the annotation ends — covers `let x: HashMap…`, fn params, and
        // struct fields (including wrappers like `RwLock<HashMap<…>>`).
        if toks[i].kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            // Skip `::` paths and struct literals `Name { field: value }` —
            // only a single `:` introduces a type annotation.
            if toks.get(i + 2).is_some_and(|t| t.is_punct(':')) {
                continue;
            }
            if type_annotation_mentions_map(toks, i + 2) {
                maps.insert(toks[i].text.to_string());
            }
        }
        // `let [mut] <pattern> = <rhs>;` where the rhs constructs a map or
        // calls a known map-returning fn: every ident bound by the pattern
        // is (conservatively) map-suspect. Handles tuple destructuring of
        // helpers like `involvement_counts`.
        if toks[i].is_ident("let") {
            let Some(eq) = assignment_eq(toks, i) else { continue };
            let mut rhs_is_map = false;
            let mut j = eq + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    "HashMap" | "HashSet" if t.kind == TokenKind::Ident => rhs_is_map = true,
                    name if t.kind == TokenKind::Ident
                        && facts.map_returning_fns.contains(name)
                        && toks.get(j + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        rhs_is_map = true
                    }
                    _ => {}
                }
                j += 1;
            }
            if rhs_is_map {
                for t in &toks[i + 1..eq] {
                    if t.kind == TokenKind::Ident && t.text != "mut" {
                        maps.insert(t.text.to_string());
                    }
                }
            }
        }
    }
    maps
}

/// True when the type annotation starting at `from` is *outermost* a
/// `HashMap`/`HashSet` (after references and path prefixes). Inner maps —
/// `Vec<HashSet<u32>>`, `RwLock<HashMap<…>>` — do not mark the binding:
/// iterating the wrapper is not iterating the map, and reaching the map
/// requires a call the receiver analysis sees separately.
fn type_annotation_mentions_map(toks: &[Token<'_>], from: usize) -> bool {
    let mut j = from;
    // Skip `&`, `&'a`, `mut`.
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_ident("mut") {
            j += 1;
        } else {
            break;
        }
    }
    // Read a path `a::b::Name` and judge its final segment.
    let mut last_ident: Option<&str> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokenKind::Ident {
            last_ident = Some(t.text);
            // Path separator `::` continues the name.
            if toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
            {
                j += 3;
                continue;
            }
        }
        break;
    }
    matches!(last_ident, Some("HashMap") | Some("HashSet"))
}

/// Token index of the `=` ending a `let` pattern, if this statement has
/// an initialiser before `;`.
fn assignment_eq(toks: &[Token<'_>], let_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(let_idx + 1) {
        match t.text {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "=" if depth == 0 && t.kind == TokenKind::Punct => {
                // Not `==`, `>=`, `<=`, `=>`.
                let prev = toks[j - 1].text;
                let next = toks.get(j + 1).map(|t| t.text);
                if prev != "="
                    && prev != "<"
                    && prev != ">"
                    && prev != "!"
                    && next != Some("=")
                    && next != Some(">")
                {
                    return Some(j);
                }
            }
            ";" | "{" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Walks back from the `.` at `dot` to decide whether the receiver chain
/// roots in a map-typed ident or a map-returning call. Returns the name
/// that triggered the match for the diagnostic message.
fn receiver_is_map(
    file: &FileAnalysis<'_>,
    dot: usize,
    maps: &BTreeSet<String>,
    facts: &GlobalFacts,
) -> (bool, String) {
    let toks = &file.tokens;
    // The token directly left of the `.` decides the receiver:
    //
    //  * an ident — a variable or a field. Map-typed: flag. Otherwise
    //    follow a field chain (`self.counts.iter()`) one hop left, but
    //    never walk past a non-`.` boundary (`for v in users.iter()` must
    //    not reach `v`).
    //  * a `)` — a call result. Flag only when the callee is a known
    //    map-returning fn; any other call (`.get(k)`, `.read()`, …)
    //    yields a *new* value whose iteration order is its own business.
    let mut i = dot;
    while i > 0 {
        let t = &toks[i - 1];
        if t.kind == TokenKind::Ident {
            if maps.contains(t.text) {
                return (true, t.text.to_string());
            }
            // Continue only through a field chain: `recv . field . iter()`.
            if i >= 2 && toks[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
            return (false, String::new());
        } else if t.is_punct(')') {
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return (false, String::new());
                }
                j -= 1;
            }
            if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                let callee = toks[j - 1].text;
                if facts.map_returning_fns.contains(callee) {
                    return (true, format!("{callee}()"));
                }
            }
            return (false, String::new());
        } else {
            return (false, String::new());
        }
    }
    (false, String::new())
}

/// The expression tokens of `for <pat> in <expr> {`: range between the
/// top-level `in` and the body `{`.
fn for_loop_expr(file: &FileAnalysis<'_>, for_idx: usize) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    let mut depth = 0i32;
    let mut in_idx = None;
    for (j, t) in toks.iter().enumerate().skip(for_idx + 1) {
        match t.text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == TokenKind::Ident => {
                in_idx = Some(j);
                break;
            }
            "{" | ";" if depth == 0 => return None,
            _ => {}
        }
    }
    let start = in_idx? + 1;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        match t.text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some((start, j)),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Does the token window reference a map-typed ident (not as a call) or a
/// map-returning call? Returns the matched name.
fn window_mentions_map(
    file: &FileAnalysis<'_>,
    start: usize,
    end: usize,
    maps: &BTreeSet<String>,
    facts: &GlobalFacts,
) -> Option<String> {
    let toks = &file.tokens;
    for j in start..end {
        let t = &toks[j];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let called = toks.get(j + 1).is_some_and(|n| n.is_punct('('));
        // `map[key]` indexes by an (externally ordered) key — only a bare
        // mention of the map itself iterates it.
        let indexed = toks.get(j + 1).is_some_and(|n| n.is_punct('['));
        if maps.contains(t.text) && !called && !indexed {
            return Some(t.text.to_string());
        }
        if facts.map_returning_fns.contains(t.text) && called {
            return Some(format!("{}()", t.text));
        }
    }
    None
}

/// True when the statement containing `site` visibly establishes an order:
/// a `sort*` call, a BTree collection, or — for `let mut x = …;` — an
/// immediate `x.sort*(…)` as the next statement.
fn statement_establishes_order(file: &FileAnalysis<'_>, site: usize) -> bool {
    let (start, end) = file.statement_window(site);
    if range_establishes_order(&file.tokens, start, end) {
        return true;
    }
    // `let mut keys: … = map.keys().collect(); keys.sort();` — the
    // canonical sorted-iteration idiom. Accept a sort on the bound name
    // in the immediately following statement.
    let toks = &file.tokens;
    // Comments and attributes (`#[allow(…)]` on the `let`) may sit between
    // statements or precede the binding; skip both.
    let next = |mut j: usize| loop {
        while toks.get(j).is_some_and(|t| t.is_comment()) {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            if let Some(close) = file.matching_close(j + 1) {
                j = close + 1;
                continue;
            }
        }
        return j;
    };
    let s0 = next(start);
    let s1 = next(s0 + 1);
    let s2 = next(s1 + 1);
    if toks.get(s0).is_some_and(|t| t.is_ident("let"))
        && toks.get(s1).is_some_and(|t| t.is_ident("mut"))
        && toks.get(s2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        let name = toks[s2].text;
        if toks.get(end).is_some_and(|t| t.is_punct(';')) {
            let e1 = next(end + 1);
            let e2 = next(e1 + 1);
            let e3 = next(e2 + 1);
            if toks.get(e1).is_some_and(|t| t.is_ident(name))
                && toks.get(e2).is_some_and(|t| t.is_punct('.'))
                && toks.get(e3).is_some_and(|t| t.text.contains("sort"))
            {
                return true;
            }
        }
    }
    false
}

fn range_establishes_order(toks: &[Token<'_>], start: usize, end: usize) -> bool {
    toks[start..end.min(toks.len())].iter().any(|t| {
        t.kind == TokenKind::Ident
            && (t.text.contains("sort") || t.text == "BTreeMap" || t.text == "BTreeSet")
    })
}

// --------------------------------------------------------------------
// R2: unwrap-in-serve
// --------------------------------------------------------------------

/// Flags `.unwrap()` / `.expect(` / `panic!` on the dial-serve request
/// path (outside `#[cfg(test)]`): a panic there kills a worker mid-request
/// instead of producing a structured 5xx.
pub struct UnwrapInServe;

impl Rule for UnwrapInServe {
    fn id(&self) -> &'static str {
        "unwrap-in-serve"
    }

    fn describe(&self) -> &'static str {
        "unwrap/expect/panic! on the dial-serve request path"
    }

    fn applies(&self, file: &FileAnalysis<'_>) -> bool {
        file.crate_dir.as_deref() == Some("dial-serve")
            && SERVE_PATH_FILES.contains(&file.file_name.as_str())
            && !file.aux_file
    }

    fn check(&self, file: &FileAnalysis<'_>, _facts: &GlobalFacts, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let t = &toks[i];
            let hit = if t.is_ident("unwrap") || t.is_ident("expect") {
                i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            } else if t.is_ident("panic") || t.is_ident("unimplemented") || t.is_ident("todo") {
                toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            } else {
                false
            };
            if hit {
                out.push(finding(
                    self.id(),
                    file,
                    t,
                    format!(
                        "`{}` can panic on the request path; return an error (the engine maps \
                         them to 5xx envelopes) or justify with lint:allow",
                        t.text
                    ),
                ));
            }
        }
    }
}

// --------------------------------------------------------------------
// R3: wall-clock-in-deterministic
// --------------------------------------------------------------------

/// Flags wall-clock reads (`SystemTime`, `Instant`, `std::time`) in
/// crates whose outputs must be a pure function of seed + input; time
/// there must flow through `dial-time`'s simulated clock types.
pub struct WallClockInDeterministic;

impl Rule for WallClockInDeterministic {
    fn id(&self) -> &'static str {
        "wall-clock-in-deterministic"
    }

    fn describe(&self) -> &'static str {
        "SystemTime/Instant/std::time in deterministic (seed-replayable) crates"
    }

    fn applies(&self, file: &FileAnalysis<'_>) -> bool {
        file.crate_dir.as_deref().is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
            && !file.aux_file
    }

    fn check(&self, file: &FileAnalysis<'_>, _facts: &GlobalFacts, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let t = &toks[i];
            let hit = t.is_ident("SystemTime")
                || t.is_ident("Instant")
                || (t.is_ident("std")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_ident("time")));
            if hit {
                out.push(finding(
                    self.id(),
                    file,
                    t,
                    format!(
                        "`{}` reads the wall clock in a deterministic crate; all time must \
                         flow through dial-time's simulated clock",
                        t.text
                    ),
                ));
            }
        }
    }
}

// --------------------------------------------------------------------
// R4: missing-checkpoint
// --------------------------------------------------------------------

/// Flags `loop`/`while` bodies in dial-serve and dial-par longer than
/// [`CHECKPOINT_LOOP_LINES`] source lines with no `checkpoint()` call:
/// long-running loops must cooperate with `dial_fault` deadlines
/// (DESIGN §12) or a deadline-bounded drain cannot reclaim their slot.
pub struct MissingCheckpoint;

impl Rule for MissingCheckpoint {
    fn id(&self) -> &'static str {
        "missing-checkpoint"
    }

    fn describe(&self) -> &'static str {
        "long serve/par loop with no dial_fault deadline checkpoint"
    }

    fn applies(&self, file: &FileAnalysis<'_>) -> bool {
        file.crate_dir.as_deref().is_some_and(|c| CHECKPOINT_CRATES.contains(&c)) && !file.aux_file
    }

    fn check(&self, file: &FileAnalysis<'_>, _facts: &GlobalFacts, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let is_loop = toks[i].is_ident("loop");
            let is_while = toks[i].is_ident("while");
            if !is_loop && !is_while {
                continue;
            }
            // Find the body `{` at bracket depth 0 after the keyword.
            let mut open = None;
            let mut depth = 0i32;
            for (j, t) in toks.iter().enumerate().skip(i + 1) {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            let Some(open) = open else { continue };
            let Some(close) = file.matching_close(open) else { continue };
            let span = toks[close].line.saturating_sub(toks[open].line) as usize;
            if span <= CHECKPOINT_LOOP_LINES {
                continue;
            }
            let has_checkpoint = toks[open..close]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text.contains("checkpoint"));
            if !has_checkpoint {
                out.push(finding(
                    self.id(),
                    file,
                    &toks[i],
                    format!(
                        "{}-line `{}` body without a dial_fault checkpoint; call \
                         deadline::checkpoint() so deadline-bounded drains can reclaim the \
                         thread (DESIGN §12), or justify with lint:allow",
                        span, toks[i].text
                    ),
                ));
            }
        }
    }
}
