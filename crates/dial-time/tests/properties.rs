//! Property-based tests for calendar and series invariants.

use dial_time::date::{days_in_month, Date};
use dial_time::{MonthlySeries, Timestamp, YearMonth};
use proptest::prelude::*;

proptest! {
    /// Round trip through epoch days is the identity on every valid date.
    #[test]
    fn date_epoch_round_trip(year in 1600i32..2400, month in 1u8..=12, day in 1u8..=31) {
        prop_assume!(day <= days_in_month(year, month));
        let d = Date::from_ymd(year, month, day);
        prop_assert_eq!(Date::from_epoch_days(d.to_epoch_days()), d);
    }

    /// Epoch days are strictly monotone in the calendar ordering.
    #[test]
    fn epoch_days_monotone(a in -200_000i64..200_000, b in -200_000i64..200_000) {
        let (da, db) = (Date::from_epoch_days(a), Date::from_epoch_days(b));
        prop_assert_eq!(a.cmp(&b), da.cmp(&db));
    }

    /// plus_days is additive.
    #[test]
    fn plus_days_additive(start in -100_000i64..100_000, a in -5000i64..5000, b in -5000i64..5000) {
        let d = Date::from_epoch_days(start);
        prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
    }

    /// ISO display/parse round trip.
    #[test]
    fn iso_round_trip(days in -100_000i64..100_000) {
        let d = Date::from_epoch_days(days);
        prop_assert_eq!(Date::parse_iso(&d.to_string()).unwrap(), d);
    }

    /// Month arithmetic: months_since inverts plus_months.
    #[test]
    fn month_arithmetic_inverse(y in 1900i32..2100, m in 1u8..=12, n in -500i64..500) {
        let ym = YearMonth::new(y, m);
        let shifted = ym.plus_months(n);
        prop_assert_eq!(shifted.months_since(ym), n);
    }

    /// A date always falls within its own month's day boundaries.
    #[test]
    fn month_contains_its_dates(days in -100_000i64..100_000) {
        let d = Date::from_epoch_days(days);
        let ym = YearMonth::of(d);
        prop_assert!(d >= ym.first_day());
        prop_assert!(d <= ym.last_day());
    }

    /// Timestamp date/minute decomposition round-trips.
    #[test]
    fn timestamp_round_trip(minutes in -200_000_000i64..200_000_000) {
        let t = Timestamp::from_minutes(minutes);
        let rebuilt = Timestamp::at_midnight(t.date()).plus_minutes(t.minute_of_day() as i64);
        prop_assert_eq!(rebuilt, t);
    }

    /// hours_since is the inverse of plus_hours (at minute resolution).
    #[test]
    fn hours_arithmetic(minutes in -1_000_000i64..1_000_000, half_hours in -10_000i32..10_000) {
        let t = Timestamp::from_minutes(minutes);
        let h = f64::from(half_hours) / 2.0;
        prop_assert!((t.plus_hours(h).hours_since(t) - h).abs() < 1e-9);
    }

    /// Series tabulation agrees with point lookups for every covered month.
    #[test]
    fn series_tabulate_get(y in 2000i32..2030, m in 1u8..=12, len in 1i64..60) {
        let start = YearMonth::new(y, m);
        let end = start.plus_months(len - 1);
        let s = MonthlySeries::tabulate(start, end, |ym| ym.months_since(start));
        prop_assert_eq!(s.len() as i64, len);
        for (ym, v) in s.iter() {
            prop_assert_eq!(*v, ym.months_since(start));
            prop_assert_eq!(s.get(ym), Some(v));
        }
    }

    /// map preserves length and start.
    #[test]
    fn series_map_alignment(len in 0usize..50) {
        let start = YearMonth::new(2018, 6);
        let s = MonthlySeries::from_vec(start, vec![1.0f64; len]);
        let t = s.map(|x| x * 2.0);
        prop_assert_eq!(t.len(), s.len());
        prop_assert_eq!(t.start(), s.start());
    }
}
