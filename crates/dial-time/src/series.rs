//! Dense month-indexed series.

use crate::month::YearMonth;
use serde::{Deserialize, Serialize};

/// A dense series of values, one per calendar month over a contiguous range.
///
/// Every longitudinal figure in the paper is "something per month"; this
/// container keeps those series aligned and makes joins explicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthlySeries<T> {
    start: YearMonth,
    values: Vec<T>,
}

impl<T> MonthlySeries<T> {
    /// Builds a series starting at `start` from a vector of per-month values.
    pub fn from_vec(start: YearMonth, values: Vec<T>) -> Self {
        Self { start, values }
    }

    /// Builds a series over `start..=end` by evaluating `f` for each month.
    pub fn tabulate(start: YearMonth, end: YearMonth, mut f: impl FnMut(YearMonth) -> T) -> Self {
        let values = start.range_inclusive(end).map(&mut f).collect();
        Self { start, values }
    }

    /// First month of the series.
    pub fn start(&self) -> YearMonth {
        self.start
    }

    /// Last month of the series, or `None` for an empty series.
    pub fn end(&self) -> Option<YearMonth> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.start.plus_months(self.values.len() as i64 - 1))
        }
    }

    /// Number of months covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the series covers no months.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value for `ym`, if within range.
    pub fn get(&self, ym: YearMonth) -> Option<&T> {
        let i = ym.months_since(self.start);
        if i < 0 {
            None
        } else {
            self.values.get(i as usize)
        }
    }

    /// Mutable value for `ym`, if within range.
    pub fn get_mut(&mut self, ym: YearMonth) -> Option<&mut T> {
        let i = ym.months_since(self.start);
        if i < 0 {
            None
        } else {
            self.values.get_mut(i as usize)
        }
    }

    /// Iterates `(month, &value)` pairs in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (YearMonth, &T)> {
        self.values.iter().enumerate().map(move |(i, v)| (self.start.plus_months(i as i64), v))
    }

    /// Applies `f` to every value, preserving alignment.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> MonthlySeries<U> {
        MonthlySeries { start: self.start, values: self.values.iter().map(&mut f).collect() }
    }

    /// Pointwise join of two series. Panics if they are not aligned (same
    /// start and length) — misaligned joins are a logic error in pipelines.
    pub fn zip_with<U, V>(
        &self,
        other: &MonthlySeries<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> MonthlySeries<V> {
        assert_eq!(self.start, other.start, "misaligned series start");
        assert_eq!(self.values.len(), other.values.len(), "misaligned series length");
        MonthlySeries {
            start: self.start,
            values: self.values.iter().zip(other.values.iter()).map(|(a, b)| f(a, b)).collect(),
        }
    }

    /// Raw values in chronological order.
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

impl<T: Default + Clone> MonthlySeries<T> {
    /// Builds a series of default values over `start..=end`.
    pub fn zeros(start: YearMonth, end: YearMonth) -> Self {
        let n = (end.months_since(start) + 1).max(0) as usize;
        Self { start, values: vec![T::default(); n] }
    }
}

impl MonthlySeries<f64> {
    /// Month-over-month relative growth, aligned to the *second* month of
    /// each pair. `None` where the previous value is zero.
    pub fn growth(&self) -> MonthlySeries<Option<f64>> {
        let mut values = Vec::with_capacity(self.values.len().saturating_sub(1));
        for w in self.values.windows(2) {
            values.push(if w[0] == 0.0 { None } else { Some(w[1] / w[0] - 1.0) });
        }
        MonthlySeries { start: self.start.plus_months(1), values }
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(y: i32, mo: u8) -> YearMonth {
        YearMonth::new(y, mo)
    }

    #[test]
    fn tabulate_and_get() {
        let s = MonthlySeries::tabulate(m(2018, 6), m(2018, 9), |ym| ym.month() as f64);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(m(2018, 8)), Some(&8.0));
        assert_eq!(s.get(m(2018, 5)), None);
        assert_eq!(s.get(m(2018, 10)), None);
        assert_eq!(s.end(), Some(m(2018, 9)));
    }

    #[test]
    fn zip_preserves_alignment() {
        let a = MonthlySeries::from_vec(m(2019, 1), vec![1.0, 2.0]);
        let b = MonthlySeries::from_vec(m(2019, 1), vec![10.0, 20.0]);
        let c = a.zip_with(&b, |x, y| x + y);
        assert_eq!(c.values(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic]
    fn zip_rejects_misaligned() {
        let a = MonthlySeries::from_vec(m(2019, 1), vec![1.0]);
        let b = MonthlySeries::from_vec(m(2019, 2), vec![1.0]);
        let _ = a.zip_with(&b, |x, y| x + y);
    }

    #[test]
    fn growth_series() {
        let s = MonthlySeries::from_vec(m(2019, 1), vec![100.0, 150.0, 0.0, 50.0]);
        let g = s.growth();
        assert_eq!(g.start(), m(2019, 2));
        assert_eq!(g.values()[0], Some(0.5));
        assert_eq!(g.values()[1], Some(-1.0));
        assert_eq!(g.values()[2], None);
    }
}
