//! Proleptic-Gregorian calendar dates.
//!
//! Conversion between `(year, month, day)` triples and days-since-Unix-epoch
//! uses the civil-from-days / days-from-civil algorithms (Howard Hinnant's
//! `chrono`-compatible formulation), which are exact for the whole `i32` year
//! range used here.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    /// 1-based month.
    month: u8,
    /// 1-based day of month.
    day: u8,
}

/// Error returned when constructing an invalid date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDate {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl fmt::Display for InvalidDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date: {:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl std::error::Error for InvalidDate {}

impl Date {
    /// Builds a date, validating the month and day-of-month.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, InvalidDate> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(InvalidDate { year, month, day });
        }
        Ok(Self { year, month, day })
    }

    /// Builds a date, panicking on invalid input. Intended for constants and
    /// tests where the input is statically known to be valid.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Self {
        Self::new(year, month, day).expect("valid calendar date")
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day-of-month component (1-31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Number of days since the Unix epoch (1970-01-01 is day 0).
    pub fn to_epoch_days(&self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::to_epoch_days`].
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
        let year = (y + i64::from(m <= 2)) as i32;
        Self { year, month: m, day: d }
    }

    /// The date `n` days after `self` (negative `n` moves backwards).
    pub fn plus_days(&self, n: i64) -> Self {
        Self::from_epoch_days(self.to_epoch_days() + n)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(&self, other: Date) -> i64 {
        self.to_epoch_days() - other.to_epoch_days()
    }

    /// Parses an ISO `YYYY-MM-DD` string.
    pub fn parse_iso(s: &str) -> Result<Self, InvalidDate> {
        let invalid = || InvalidDate { year: 0, month: 0, day: 0 };
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts.next().and_then(|p| p.parse().ok()).ok_or_else(invalid)?;
        let month: u8 = parts.next().and_then(|p| p.parse().ok()).ok_or_else(invalid)?;
        let day: u8 = parts.next().and_then(|p| p.parse().ok()).ok_or_else(invalid)?;
        Self::new(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).to_epoch_days(), 0);
        assert_eq!(Date::from_epoch_days(0), Date::from_ymd(1970, 1, 1));
    }

    #[test]
    fn known_epoch_days() {
        // Cross-checked against `date -d ... +%s / 86400`.
        assert_eq!(Date::from_ymd(2018, 6, 1).to_epoch_days(), 17683);
        assert_eq!(Date::from_ymd(2020, 3, 11).to_epoch_days(), 18332);
        assert_eq!(Date::from_ymd(2020, 6, 30).to_epoch_days(), 18443);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2020));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2019));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2019, 2, 29).is_err());
        assert!(Date::new(2019, 13, 1).is_err());
        assert!(Date::new(2019, 0, 1).is_err());
        assert!(Date::new(2019, 4, 31).is_err());
        assert!(Date::new(2019, 4, 0).is_err());
    }

    #[test]
    fn plus_days_crosses_month_and_year() {
        assert_eq!(Date::from_ymd(2019, 12, 31).plus_days(1), Date::from_ymd(2020, 1, 1));
        assert_eq!(Date::from_ymd(2020, 3, 1).plus_days(-1), Date::from_ymd(2020, 2, 29));
    }

    #[test]
    fn parse_and_display_round_trip() {
        let d = Date::parse_iso("2019-03-01").unwrap();
        assert_eq!(d, Date::from_ymd(2019, 3, 1));
        assert_eq!(d.to_string(), "2019-03-01");
        assert!(Date::parse_iso("2019-02-30").is_err());
        assert!(Date::parse_iso("garbage").is_err());
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::from_ymd(2018, 6, 1) < Date::from_ymd(2018, 6, 2));
        assert!(Date::from_ymd(2018, 12, 31) < Date::from_ymd(2019, 1, 1));
    }
}
