//! Calendar months and month arithmetic.

use crate::date::{days_in_month, Date};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar month (year + month), the bucketing unit of every longitudinal
/// analysis in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct YearMonth {
    year: i32,
    month: u8,
}

impl YearMonth {
    /// Builds a year-month; panics if `month` is not in `1..=12`.
    pub fn new(year: i32, month: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        Self { year, month }
    }

    /// The month containing `date`.
    pub fn of(date: Date) -> Self {
        Self { year: date.year(), month: date.month() }
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Zero-based month count since year 0, used for arithmetic.
    fn linear(&self) -> i64 {
        i64::from(self.year) * 12 + i64::from(self.month) - 1
    }

    fn from_linear(n: i64) -> Self {
        Self { year: n.div_euclid(12) as i32, month: (n.rem_euclid(12) + 1) as u8 }
    }

    /// The month `n` months after `self` (negative moves backwards).
    pub fn plus_months(&self, n: i64) -> Self {
        Self::from_linear(self.linear() + n)
    }

    /// Signed number of months from `other` to `self`.
    pub fn months_since(&self, other: YearMonth) -> i64 {
        self.linear() - other.linear()
    }

    /// First day of this month.
    pub fn first_day(&self) -> Date {
        Date::from_ymd(self.year, self.month, 1)
    }

    /// Last day of this month.
    pub fn last_day(&self) -> Date {
        Date::from_ymd(self.year, self.month, days_in_month(self.year, self.month))
    }

    /// Number of days in this month.
    pub fn len_days(&self) -> u8 {
        days_in_month(self.year, self.month)
    }

    /// Iterator over `self..=end` inclusive.
    pub fn range_inclusive(self, end: YearMonth) -> impl Iterator<Item = YearMonth> {
        let start = self.linear();
        let stop = end.linear();
        (start..=stop).map(YearMonth::from_linear)
    }
}

impl fmt::Display for YearMonth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps_years() {
        let m = YearMonth::new(2018, 11);
        assert_eq!(m.plus_months(2), YearMonth::new(2019, 1));
        assert_eq!(m.plus_months(-11), YearMonth::new(2017, 12));
        assert_eq!(YearMonth::new(2020, 6).months_since(YearMonth::new(2018, 6)), 24);
    }

    #[test]
    fn day_boundaries() {
        let m = YearMonth::new(2020, 2);
        assert_eq!(m.first_day(), Date::from_ymd(2020, 2, 1));
        assert_eq!(m.last_day(), Date::from_ymd(2020, 2, 29));
        assert_eq!(m.len_days(), 29);
    }

    #[test]
    fn range_covers_study_window() {
        let months: Vec<_> =
            YearMonth::new(2018, 6).range_inclusive(YearMonth::new(2020, 6)).collect();
        assert_eq!(months.len(), 25);
        assert_eq!(months[0], YearMonth::new(2018, 6));
        assert_eq!(months[24], YearMonth::new(2020, 6));
    }

    #[test]
    #[should_panic]
    fn rejects_month_13() {
        let _ = YearMonth::new(2020, 13);
    }
}
