//! Minute-resolution instants.
//!
//! Contract creation/completion times in the study have sub-day resolution
//! (completion times are reported in hours), so dates alone are not enough.
//! A [`Timestamp`] is a signed count of minutes since the Unix epoch.

use crate::date::Date;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minutes per day.
pub const MINUTES_PER_DAY: i64 = 24 * 60;

/// An instant with one-minute resolution, stored as minutes since the Unix
/// epoch (1970-01-01T00:00).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// Builds a timestamp from raw minutes since the epoch.
    pub fn from_minutes(minutes: i64) -> Self {
        Self(minutes)
    }

    /// Builds a timestamp at midnight on `date`.
    pub fn at_midnight(date: Date) -> Self {
        Self(date.to_epoch_days() * MINUTES_PER_DAY)
    }

    /// Builds a timestamp on `date` at the given hour/minute of day.
    pub fn at(date: Date, hour: u8, minute: u8) -> Self {
        debug_assert!(hour < 24 && minute < 60);
        Self(date.to_epoch_days() * MINUTES_PER_DAY + i64::from(hour) * 60 + i64::from(minute))
    }

    /// Raw minutes since the epoch.
    pub fn minutes(&self) -> i64 {
        self.0
    }

    /// The calendar date this instant falls on.
    pub fn date(&self) -> Date {
        Date::from_epoch_days(self.0.div_euclid(MINUTES_PER_DAY))
    }

    /// Minute within the day, in `[0, 1440)`.
    pub fn minute_of_day(&self) -> u32 {
        self.0.rem_euclid(MINUTES_PER_DAY) as u32
    }

    /// This instant shifted forward by a (possibly fractional) number of
    /// hours; fractions are rounded to the nearest minute.
    pub fn plus_hours(&self, hours: f64) -> Self {
        Self(self.0 + (hours * 60.0).round() as i64)
    }

    /// This instant shifted forward by whole minutes.
    pub fn plus_minutes(&self, minutes: i64) -> Self {
        Self(self.0 + minutes)
    }

    /// Signed elapsed hours from `earlier` to `self`.
    pub fn hours_since(&self, earlier: Timestamp) -> f64 {
        (self.0 - earlier.0) as f64 / 60.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.minute_of_day();
        write!(f, "{}T{:02}:{:02}", self.date(), m / 60, m % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_and_minute_round_trip() {
        let d = Date::from_ymd(2019, 3, 1);
        let t = Timestamp::at(d, 13, 37);
        assert_eq!(t.date(), d);
        assert_eq!(t.minute_of_day(), 13 * 60 + 37);
        assert_eq!(t.to_string(), "2019-03-01T13:37");
    }

    #[test]
    fn negative_timestamps_floor_correctly() {
        // 1969-12-31T23:59 is one minute before the epoch.
        let t = Timestamp::from_minutes(-1);
        assert_eq!(t.date(), Date::from_ymd(1969, 12, 31));
        assert_eq!(t.minute_of_day(), MINUTES_PER_DAY as u32 - 1);
    }

    #[test]
    fn hour_arithmetic() {
        let t0 = Timestamp::at_midnight(Date::from_ymd(2020, 4, 1));
        let t1 = t0.plus_hours(72.5);
        assert_eq!(t1.hours_since(t0), 72.5);
        assert_eq!(t1.date(), Date::from_ymd(2020, 4, 4));
    }
}
