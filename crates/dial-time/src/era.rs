//! The paper's three analysis eras and the study window.
//!
//! The era boundaries are *deductive* — imposed from external events rather
//! than inferred from the data (§2.2 of the paper):
//!
//! * **SET-UP** (E1, *forming/storming*): 2018-06-01, the launch of the
//!   contract system, until 2019-02-28, the day before contracts became
//!   mandatory.
//! * **STABLE** (E2, *norming*): 2019-03-01 until 2020-03-10, the day before
//!   the WHO declared the COVID-19 pandemic.
//! * **COVID-19** (E3, *performing*): 2020-03-11 until the end of data
//!   collection on 2020-06-30.

use crate::date::Date;
use crate::month::YearMonth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's three analysis eras.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Era {
    /// E1: contract system optional; the market forms.
    SetUp,
    /// E2: contracts mandatory; the market norms.
    Stable,
    /// E3: pandemic declared; the market is stimulated.
    Covid19,
}

impl Era {
    /// All eras in chronological order.
    pub const ALL: [Era; 3] = [Era::SetUp, Era::Stable, Era::Covid19];

    /// First day of the era.
    pub fn start(&self) -> Date {
        match self {
            Era::SetUp => Date::from_ymd(2018, 6, 1),
            Era::Stable => Date::from_ymd(2019, 3, 1),
            Era::Covid19 => Date::from_ymd(2020, 3, 11),
        }
    }

    /// Last day of the era (inclusive).
    pub fn end(&self) -> Date {
        match self {
            Era::SetUp => Date::from_ymd(2019, 2, 28),
            Era::Stable => Date::from_ymd(2020, 3, 10),
            Era::Covid19 => Date::from_ymd(2020, 6, 30),
        }
    }

    /// The era containing `date`, or `None` outside the study window.
    pub fn of(date: Date) -> Option<Era> {
        Era::ALL.into_iter().find(|e| date >= e.start() && date <= e.end())
    }

    /// Short figure label used by the paper (E1/E2/E3).
    pub fn short_label(&self) -> &'static str {
        match self {
            Era::SetUp => "E1",
            Era::Stable => "E2",
            Era::Covid19 => "E3",
        }
    }

    /// The era a whole month is attributed to. March 2019 and March 2020 are
    /// boundary months; the paper attributes a month to the era containing
    /// its first day for monthly aggregates, except that March 2020 (which
    /// splits on the 11th) is attributed to COVID-19 since the pandemic
    /// declaration dominates it.
    pub fn of_month(ym: YearMonth) -> Option<Era> {
        if ym == YearMonth::new(2020, 3) {
            return Some(Era::Covid19);
        }
        Era::of(ym.first_day())
    }
}

impl fmt::Display for Era {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Era::SetUp => "SET-UP",
            Era::Stable => "STABLE",
            Era::Covid19 => "COVID-19",
        };
        f.write_str(name)
    }
}

/// The full data-collection window: 2018-06-01 ..= 2020-06-30 (25 months).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyWindow;

impl StudyWindow {
    /// First day of data collection.
    pub fn start() -> Date {
        Era::SetUp.start()
    }

    /// Last day of data collection (inclusive).
    pub fn end() -> Date {
        Era::Covid19.end()
    }

    /// First month of the window.
    pub fn first_month() -> YearMonth {
        YearMonth::new(2018, 6)
    }

    /// Last month of the window.
    pub fn last_month() -> YearMonth {
        YearMonth::new(2020, 6)
    }

    /// Number of months in the window (25).
    pub fn n_months() -> usize {
        (Self::last_month().months_since(Self::first_month()) + 1) as usize
    }

    /// All months of the window in order.
    pub fn months() -> impl Iterator<Item = YearMonth> {
        Self::first_month().range_inclusive(Self::last_month())
    }

    /// Dense zero-based index of a month within the window, or `None` if the
    /// month falls outside it.
    pub fn month_index(ym: YearMonth) -> Option<usize> {
        let i = ym.months_since(Self::first_month());
        if i >= 0 && (i as usize) < Self::n_months() {
            Some(i as usize)
        } else {
            None
        }
    }

    /// True if `date` lies inside the window.
    pub fn contains(date: Date) -> bool {
        date >= Self::start() && date <= Self::end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_boundaries_are_contiguous_and_exclusive() {
        for w in Era::ALL.windows(2) {
            assert_eq!(w[0].end().plus_days(1), w[1].start());
        }
        assert_eq!(Era::of(Date::from_ymd(2019, 2, 28)), Some(Era::SetUp));
        assert_eq!(Era::of(Date::from_ymd(2019, 3, 1)), Some(Era::Stable));
        assert_eq!(Era::of(Date::from_ymd(2020, 3, 10)), Some(Era::Stable));
        assert_eq!(Era::of(Date::from_ymd(2020, 3, 11)), Some(Era::Covid19));
        assert_eq!(Era::of(Date::from_ymd(2018, 5, 31)), None);
        assert_eq!(Era::of(Date::from_ymd(2020, 7, 1)), None);
    }

    #[test]
    fn window_has_25_months() {
        assert_eq!(StudyWindow::n_months(), 25);
        assert_eq!(StudyWindow::month_index(YearMonth::new(2018, 6)), Some(0));
        assert_eq!(StudyWindow::month_index(YearMonth::new(2020, 6)), Some(24));
        assert_eq!(StudyWindow::month_index(YearMonth::new(2020, 7)), None);
    }

    #[test]
    fn boundary_month_attribution() {
        assert_eq!(Era::of_month(YearMonth::new(2019, 3)), Some(Era::Stable));
        assert_eq!(Era::of_month(YearMonth::new(2020, 3)), Some(Era::Covid19));
        assert_eq!(Era::of_month(YearMonth::new(2018, 6)), Some(Era::SetUp));
    }
}
