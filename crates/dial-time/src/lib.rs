//! Calendar and time-series primitives for the *dial-market* study.
//!
//! The paper's study window runs from 1 June 2018 to 30 June 2020 and is
//! partitioned into three eras (SET-UP, STABLE, COVID-19). Everything in the
//! analysis is bucketed by calendar month, so this crate provides:
//!
//! * [`Date`] — a proleptic-Gregorian calendar date with O(1) epoch-day
//!   conversion (no external `chrono` dependency),
//! * [`Timestamp`] — minute-resolution instants, used for contract creation
//!   and completion times,
//! * [`YearMonth`] — a calendar month with arithmetic and range iteration,
//! * [`Era`] — the paper's three analysis eras with their exact boundaries,
//! * [`MonthlySeries`] — a dense month-indexed series container used by every
//!   longitudinal pipeline.
//!
//! All types are `Copy` where possible, totally ordered, and serde-enabled so
//! datasets can be snapshotted.

pub mod date;
pub mod era;
pub mod month;
pub mod series;
pub mod timestamp;

pub use date::Date;
pub use era::{Era, StudyWindow};
pub use month::YearMonth;
pub use series::MonthlySeries;
pub use timestamp::Timestamp;
