//! Probe of how the Figure 7 hub structure scales: max inbound/outbound
//! degrees grow super-linearly with market scale under preferential
//! attachment.
//!
//! ```sh
//! cargo run --release -p dial-sim --example hubprobe
//! ```
use dial_model::UserId;
use std::collections::HashMap;

fn main() {
    for scale in [0.1f64, 0.3] {
        let ds =
            dial_sim::SimConfig::paper_default().with_seed(0xD1A1).with_scale(scale).simulate();
        let mut inb: HashMap<UserId, std::collections::HashSet<UserId>> = HashMap::new();
        let mut out: HashMap<UserId, std::collections::HashSet<UserId>> = HashMap::new();
        for c in ds.contracts() {
            out.entry(c.maker).or_default().insert(c.taker);
            inb.entry(c.taker).or_default().insert(c.maker);
            if c.contract_type.is_bidirectional() {
                out.entry(c.taker).or_default().insert(c.maker);
                inb.entry(c.maker).or_default().insert(c.taker);
            }
        }
        let maxi = inb.values().map(|s| s.len()).max().unwrap_or(0);
        let maxo = out.values().map(|s| s.len()).max().unwrap_or(0);
        println!(
            "scale {scale}: max inbound {maxi}, max outbound {maxo}, ratio {:.1}",
            maxi as f64 / maxo as f64
        );
    }
}
