//! Calibration probe: per-type completion rates and public shares vs the
//! paper's Table 1/2 targets. Used when tuning `config.rs` constants —
//! each column pair prints measured vs target.
//!
//! ```sh
//! cargo run --release -p dial-sim --example calibrate
//! ```
use dial_model::{ContractType, Visibility};

fn main() {
    let ds = dial_sim::SimConfig::paper_default().with_seed(2020).with_scale(0.3).simulate();
    println!("type        compl%  target  pubC%  target  pubD%  target");
    let targets = [
        (32.7, 8.0, 12.05),
        (53.1, 20.9, 24.2),
        (69.8, 18.1, 16.7),
        (56.4, 25.9, 26.5),
        (57.7, 18.7, 17.7),
    ];
    for (ty, t) in ContractType::ALL.into_iter().zip(targets) {
        let all: Vec<_> = ds.contracts().iter().filter(|c| c.contract_type == ty).collect();
        let compl = all.iter().filter(|c| c.is_complete()).count();
        let pub_c = all.iter().filter(|c| c.visibility == Visibility::Public).count();
        let pub_d =
            all.iter().filter(|c| c.is_complete() && c.visibility == Visibility::Public).count();
        println!(
            "{:<11} {:5.1}   {:5.1}  {:5.1}   {:5.1}  {:5.1}   {:5.1}",
            ty.label(),
            100.0 * compl as f64 / all.len() as f64,
            t.0,
            100.0 * pub_c as f64 / all.len() as f64,
            t.1,
            100.0 * pub_d as f64 / compl.max(1) as f64,
            t.2,
        );
    }
    let total = ds.contracts().len();
    let pub_all = ds.contracts().iter().filter(|c| c.visibility == Visibility::Public).count();
    let compl_all: Vec<_> = ds.contracts().iter().filter(|c| c.is_complete()).collect();
    let pub_compl = compl_all.iter().filter(|c| c.visibility == Visibility::Public).count();
    println!(
        "overall public created {:.1}% (target 12.0), completed {:.1}% (target 15.7)",
        100.0 * pub_all as f64 / total as f64,
        100.0 * pub_compl as f64 / compl_all.len() as f64
    );
    // settlement correlation
    let pub_contracts: Vec<_> =
        ds.contracts().iter().filter(|c| c.visibility == Visibility::Public).collect();
    let priv_compl = ds
        .contracts()
        .iter()
        .filter(|c| c.visibility == Visibility::Private && c.is_complete())
        .count();
    let pub_rate = pub_contracts.iter().filter(|c| c.is_complete()).count() as f64
        / pub_contracts.len() as f64;
    let priv_rate = priv_compl as f64 / (total - pub_contracts.len()) as f64;
    println!(
        "completion: public {:.1}% (target 57.0) vs private {:.1}% (target 41.7)",
        pub_rate * 100.0,
        priv_rate * 100.0
    );
}
