//! Smoke test: run the full-scale simulation and print its size and the
//! planted verification mix.
//!
//! ```sh
//! cargo run --release -p dial-sim --example fullsim
//! ```
fn main() {
    let t = std::time::Instant::now();
    let out = dial_sim::SimConfig::paper_default().simulate_full();
    println!("{} in {:?}", out.dataset.summary(), t.elapsed());
    println!("planted: {:?}, ledger {}", out.truth.planted_verdicts, out.ledger.len());
}
