//! Property-based tests over the generative market: invariants that must
//! hold for every seed.

use dial_model::{ContractStatus, ContractType, Visibility};
use dial_sim::SimConfig;
use dial_time::{Era, StudyWindow};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Structural well-formedness for any seed.
    #[test]
    fn any_seed_is_well_formed(seed in 0u64..100_000) {
        let out = SimConfig::paper_default().with_seed(seed).with_scale(0.006).simulate_full();
        prop_assert!(out.dataset.validate().is_empty());
        prop_assert_eq!(out.truth.user_classes.len(), out.dataset.users().len());
    }

    /// Temporal invariants: creation inside the window, completion after
    /// creation, vouch copies only after their introduction, users joined
    /// before their activity.
    #[test]
    fn temporal_invariants(seed in 0u64..100_000) {
        let ds = SimConfig::paper_default().with_seed(seed).with_scale(0.006).simulate();
        for c in ds.contracts() {
            prop_assert!(StudyWindow::contains(c.created.date()));
            if let Some(done) = c.completed {
                prop_assert!(done >= c.created);
                prop_assert_eq!(c.status, ContractStatus::Complete);
            }
            if c.contract_type == ContractType::VouchCopy {
                prop_assert!(c.created_month() >= ContractType::VouchCopy.introduced());
            }
            for p in c.parties() {
                prop_assert!(ds.user(p).joined <= c.created.date());
            }
        }
        for t in ds.threads() {
            prop_assert!(t.author.index() < ds.users().len());
        }
    }

    /// Era ordering of volumes: STABLE >> SET-UP monthly average, and the
    /// dispute spike sits in late SET-UP.
    #[test]
    fn era_volume_ordering(seed in 0u64..100_000) {
        let ds = SimConfig::paper_default().with_seed(seed).with_scale(0.01).simulate();
        let count = |era: Era| ds.contracts_in_era(era).count() as f64;
        let setup_monthly = count(Era::SetUp) / 9.0;
        let stable_monthly = count(Era::Stable) / 12.3;
        prop_assert!(stable_monthly > 1.8 * setup_monthly);
    }

    /// Privacy invariant: private contracts never expose obligations;
    /// disputed contracts are always public.
    #[test]
    fn privacy_invariants(seed in 0u64..100_000) {
        let ds = SimConfig::paper_default().with_seed(seed).with_scale(0.006).simulate();
        for c in ds.contracts() {
            if c.visibility == Visibility::Private {
                prop_assert!(c.maker_obligation.is_empty());
                prop_assert!(c.taker_obligation.is_empty());
                prop_assert!(c.chain_ref.is_none());
            }
            if c.is_disputed() {
                prop_assert_eq!(c.visibility, Visibility::Public);
            }
        }
    }

    /// Ledger consistency: every planted (confirmed or mismatched) chain
    /// reference resolves; quoted tx hashes always exist on the ledger.
    #[test]
    fn ledger_consistency(seed in 0u64..100_000) {
        let out = SimConfig::paper_default().with_seed(seed).with_scale(0.02).simulate_full();
        let [confirmed, mismatch, _] = out.truth.planted_verdicts;
        prop_assert_eq!(out.ledger.len(), confirmed + mismatch);
        for c in out.dataset.contracts() {
            if let Some(cr) = &c.chain_ref {
                if let Some(h) = &cr.tx_hash {
                    prop_assert!(out.ledger.by_hash(h).is_some(), "dangling tx hash");
                }
            }
        }
    }
}

/// Cross-crate round trip: the text the generator writes must be readable
/// by the miners — every public money-bearing obligation yields a value
/// within sane range of the planted one, and exchange texts classify as
/// currency exchange.
#[test]
fn textgen_money_round_trip() {
    use dial_fx::{Currency, RateProvider, SyntheticRates};
    use dial_sim::textgen;
    use dial_text::{classify_activities, scan_money, TradeCategory};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let rates = SyntheticRates;
    let mut rng = ChaCha8Rng::seed_from_u64(12345);
    let date = dial_time::Date::from_ymd(2019, 8, 15);
    for i in 0..500 {
        let value = 10.0 + f64::from(i % 90) * 7.0;
        let content =
            textgen::generate(&mut rng, ContractType::Exchange, 14, value, date, &rates, false);
        // The taker side always carries a money mention; the maker side
        // does whenever it quotes a leg ("sending ..."). The ~8% of
        // exchanges that swap goods quote value on the taker side only.
        for text in [&content.maker.text, &content.taker.text] {
            if std::ptr::eq(text, &content.maker.text) && !text.contains("sending") {
                continue;
            }
            let mentions = scan_money(text);
            assert!(!mentions.is_empty(), "no money in {text:?}");
            for m in &mentions {
                let usd = m.amount * rates.usd_rate(m.currency.unwrap_or(Currency::Usd), date);
                let rel = (usd - value).abs() / value;
                assert!(rel < 0.25, "planted {value}, recovered {usd} from {text:?}");
            }
        }
        // Currency swaps (not goods swaps) classify as currency exchange
        // on the maker side.
        if content.maker.text.contains("exchange sending") {
            let cats = classify_activities(&content.maker.text);
            assert!(
                cats.contains(&TradeCategory::CurrencyExchange),
                "{:?} -> {cats:?}",
                content.maker.text
            );
        }
    }
}
