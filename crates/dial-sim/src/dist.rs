//! Random-variate samplers built on `rand::Rng`.
//!
//! The approved offline crate set has no `rand_distr`, so the handful of
//! distributions the simulator needs are implemented here.

use rand::Rng;

/// Draws from `Poisson(λ)`.
///
/// Knuth's multiplication method for small λ; for λ ≥ 30 a normal
/// approximation with continuity correction (ample for volume counts).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "λ must be finite and ≥ 0");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 1_000_000 {
                return k; // unreachable in practice; guards λ near the cutoff
            }
        }
    }
    let z = standard_normal(rng);
    let v = lambda + lambda.sqrt() * z + 0.5;
    if v < 0.0 {
        0
    } else {
        v.floor() as u64
    }
}

/// Draws a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from `LogNormal(μ, σ)` (parameters of the underlying normal).
pub fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Draws an index from a discrete distribution given non-negative weights.
/// Falls back to uniform if all weights are zero.
///
/// # Panics
/// Panics on an empty weight slice.
pub fn categorical(rng: &mut impl Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty categorical");
    debug_assert!(weights.iter().all(|w| *w >= 0.0));
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut target = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Bernoulli draw.
pub fn bernoulli(rng: &mut impl Rng, p: f64) -> bool {
    debug_assert!((0.0..=1.0 + 1e-12).contains(&p), "p out of range: {p}");
    rng.random_range(0.0..1.0) < p
}

/// Exponential draw with the given mean.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - lambda).abs() < lambda.sqrt() * 0.08 + 0.05, "λ={lambda} mean={mean}");
            assert!((var - lambda).abs() < lambda * 0.15 + 0.1, "λ={lambda} var={var}");
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn log_normal_median() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 3.0, 1.0)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 3.0f64.exp()).abs() < 1.5, "median {median}");
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut rng, &w)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.01);
        assert!((counts[2] as f64 / 30_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn categorical_all_zero_is_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let w = [0.0, 0.0];
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[categorical(&mut rng, &w)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2);
    }
}
