//! A calibrated generative simulator of the HACK FORUMS contract
//! marketplace.
//!
//! The real CrimeBB dataset is restricted, so this crate *is* the dataset:
//! it generates users, contracts, threads, posts and an accompanying
//! simulated blockchain whose aggregate behaviour is parameterised by every
//! marginal the paper publishes —
//!
//! * monthly created/completed volumes and new-member arrivals (Figure 1),
//! * the contract-type mix per era and its era transitions (Figure 3,
//!   Table 1 row totals),
//! * per-type status and visibility distributions (Tables 1–2, Figure 2),
//! * completion-time decay across the window (Figure 4),
//! * the 12 latent behaviour classes and their make/accept rate matrix
//!   (Table 6), with era-specific arrival mixes and churn,
//! * maker→taker flow preferences per era (Table 8) plus preferential
//!   attachment, which together produce the hub-dominated power-law degree
//!   structure of Figure 7,
//! * category/payment/value distributions for obligation text
//!   (Tables 3–5), rendered through templates that the `dial-text`
//!   pipeline can re-mine,
//! * blockchain planting at the paper's observed verification-outcome rates
//!   (§4.5: 50% confirmed / 43% mismatch / 7% not found).
//!
//! Everything is driven by a seeded ChaCha PRNG: the same [`SimConfig`]
//! always yields the same dataset, bit for bit.

pub mod classes;
pub mod config;
pub mod dist;
pub mod flows;
pub mod market;
pub mod textgen;

pub use classes::BehaviourClass;
pub use config::parse_scale;
pub use config::{SimConfig, SybilAttack};
pub use market::{MonthMark, SimOutput};
