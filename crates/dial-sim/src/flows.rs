//! Maker→taker class flow preferences per era (Table 8).
//!
//! Table 8 reports, for each contract type and era, the three maker→taker
//! class pairs carrying the largest share of that type's volume. The
//! simulator honours those shares directly: with probability equal to the
//! summed share, a contract's (maker class, taker class) pair is drawn from
//! the listed flows; otherwise both classes are drawn independently from
//! the rate-weighted population.

use crate::classes::BehaviourClass;
use dial_model::ContractType;
use dial_time::Era;

/// One preferred flow: maker class, taker class, and the share of the
/// type's volume it carries within the era.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Class initiating the contract.
    pub maker: BehaviourClass,
    /// Class accepting the contract.
    pub taker: BehaviourClass,
    /// Fraction of all contracts of this type in this era.
    pub share: f64,
}

/// Table 8: the top-3 flows for each (type, era). Exchange/Purchase/Sale
/// only — Trade and Vouch Copy are too small for the paper to report flows.
pub fn flows(ty: ContractType, era: Era) -> &'static [Flow] {
    use BehaviourClass::*;
    const fn f(maker: BehaviourClass, taker: BehaviourClass, share: f64) -> Flow {
        Flow { maker, taker, share }
    }
    match (ty, era) {
        (ContractType::Exchange, Era::SetUp) => {
            const T: [Flow; 3] = [f(F, E, 0.07), f(F, K, 0.06), f(D, B, 0.06)];
            &T
        }
        (ContractType::Exchange, Era::Stable) => {
            const T: [Flow; 3] = [f(F, K, 0.07), f(F, E, 0.05), f(G, D, 0.05)];
            &T
        }
        (ContractType::Exchange, Era::Covid19) => {
            const T: [Flow; 3] = [f(F, K, 0.10), f(F, E, 0.06), f(G, D, 0.05)];
            &T
        }
        (ContractType::Purchase, Era::SetUp) => {
            const T: [Flow; 3] = [f(H, C, 0.22), f(J, C, 0.20), f(H, E, 0.07)];
            &T
        }
        (ContractType::Purchase, Era::Stable) => {
            const T: [Flow; 3] = [f(H, C, 0.23), f(J, C, 0.19), f(H, K, 0.06)];
            &T
        }
        (ContractType::Purchase, Era::Covid19) => {
            const T: [Flow; 3] = [f(H, C, 0.26), f(J, C, 0.18), f(H, I, 0.06)];
            &T
        }
        (ContractType::Sale, Era::SetUp) => {
            const T: [Flow; 3] = [f(C, J, 0.22), f(C, A, 0.13), f(I, J, 0.06)];
            &T
        }
        (ContractType::Sale, Era::Stable) => {
            const T: [Flow; 3] = [f(C, L, 0.47), f(C, A, 0.20), f(C, J, 0.09)];
            &T
        }
        (ContractType::Sale, Era::Covid19) => {
            const T: [Flow; 3] = [f(C, L, 0.42), f(C, A, 0.18), f(C, J, 0.09)];
            &T
        }
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_never_exceed_one() {
        for ty in ContractType::ALL {
            for era in Era::ALL {
                let total: f64 = flows(ty, era).iter().map(|f| f.share).sum();
                assert!(total < 1.0, "{ty:?}/{era}: {total}");
            }
        }
    }

    #[test]
    fn table8_headline_flows() {
        // STABLE SALE is dominated by C→L at 47%.
        let sale_stable = flows(ContractType::Sale, Era::Stable);
        assert_eq!(sale_stable[0].maker, BehaviourClass::C);
        assert_eq!(sale_stable[0].taker, BehaviourClass::L);
        assert!((sale_stable[0].share - 0.47).abs() < 1e-12);
        // SET-UP SALE instead flows C→J.
        assert_eq!(flows(ContractType::Sale, Era::SetUp)[0].taker, BehaviourClass::J);
        // Trade/Vouch have no reported flows.
        assert!(flows(ContractType::Trade, Era::Stable).is_empty());
        assert!(flows(ContractType::VouchCopy, Era::Covid19).is_empty());
    }
}
