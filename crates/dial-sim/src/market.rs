//! The month-by-month market generation engine.

use crate::classes::BehaviourClass;
use crate::config::{self, SimConfig};
use crate::dist::{bernoulli, categorical, log_normal, poisson, standard_normal};
use crate::flows;
use crate::textgen;
use dial_chain::{ChainTx, HashGen, Ledger};
use dial_fx::SyntheticRates;
use dial_model::{
    ChainRef, Contract, ContractId, ContractStatus, ContractType, Dataset, Post, PostId, Thread,
    ThreadId, User, UserId, Visibility,
};
use dial_time::{Date, Era, Timestamp, YearMonth};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Everything the simulation produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The observational dataset handed to the analysis pipelines.
    pub dataset: Dataset,
    /// The simulated blockchain for value verification.
    pub ledger: Ledger,
    /// Generator-side ground truth, for calibration tests only — analysis
    /// pipelines must never read this.
    pub truth: SimTruth,
    /// Cumulative entity counts at the end of each generated month, in
    /// study order. Entity ids are dense in generation order, so two
    /// consecutive marks delimit exactly the entities produced during one
    /// month — the handle the streaming replay adapter uses to cut the
    /// event log into watermarked segments without re-deriving generation
    /// months from entity timestamps (which spill across month boundaries:
    /// thread-seeding posts and chain confirmations land later).
    pub marks: Vec<MonthMark>,
}

/// Cumulative entity counts after one generated month.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonthMark {
    /// The study month this mark closes.
    pub month: YearMonth,
    /// Users generated so far (dense prefix `0..users`).
    pub users: usize,
    /// Contracts generated so far.
    pub contracts: usize,
    /// Threads generated so far.
    pub threads: usize,
    /// Posts generated so far.
    pub posts: usize,
    /// Chain transactions inserted so far (ledger insertion order).
    pub chain_txs: usize,
}

/// Ground truth retained from generation.
#[derive(Debug, Clone)]
pub struct SimTruth {
    /// The latent behaviour class each user was generated from.
    pub user_classes: Vec<BehaviourClass>,
    /// How many chain references were planted per verification outcome
    /// (confirmed / mismatch / not-found).
    pub planted_verdicts: [usize; 3],
}

/// Live state for one simulated member.
struct UserState {
    class: BehaviourClass,
    active: bool,
    made: u32,
    accepted: u32,
    /// Structural never-completer flag (the zero-inflation source).
    completer: bool,
    /// Positive reputation signals received (ratings on settled deals).
    rep_pos: u32,
    /// Negative reputation signals received (disputes and, under a Sybil
    /// attack, injected fakes).
    rep_neg: u32,
}

/// The generation engine.
struct Engine {
    rng: ChaCha8Rng,
    cfg: SimConfig,
    rates: SyntheticRates,
    users: Vec<UserState>,
    user_records: Vec<User>,
    /// Active user indices per class.
    pools: [Vec<u32>; 12],
    contracts: Vec<Contract>,
    threads: Vec<Thread>,
    posts: Vec<Post>,
    /// Advertisement thread per (user, rough product line).
    ad_threads: HashMap<u32, ThreadId>,
    ledger: Ledger,
    hashes: HashGen,
    planted: [usize; 3],
    marks: Vec<MonthMark>,
}

/// Runs the full simulation.
pub fn simulate(cfg: &SimConfig) -> SimOutput {
    let mut e = Engine {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        cfg: cfg.clone(),
        rates: SyntheticRates,
        users: Vec::new(),
        user_records: Vec::new(),
        pools: Default::default(),
        contracts: Vec::new(),
        threads: Vec::new(),
        posts: Vec::new(),
        ad_threads: HashMap::new(),
        ledger: Ledger::new(),
        hashes: HashGen::new(cfg.seed ^ 0xB17C_0123),
        planted: [0; 3],
        marks: Vec::new(),
    };
    e.run();
    let truth = SimTruth {
        user_classes: e.users.iter().map(|u| u.class).collect(),
        planted_verdicts: e.planted,
    };
    let dataset = Dataset::new(e.user_records, e.contracts, e.threads, e.posts);
    SimOutput { dataset, ledger: e.ledger, truth, marks: e.marks }
}

impl Engine {
    fn run(&mut self) {
        let months = config::months();
        for (m, ym) in months.iter().enumerate() {
            let era = Era::of_month(*ym).expect("study month");
            self.spawn_arrivals(m, *ym, era);
            self.apply_sybil_attack(era);
            self.generate_contracts(m, *ym, era);
            self.ambient_posts(m, *ym);
            self.churn();
            self.marks.push(MonthMark {
                month: *ym,
                users: self.user_records.len(),
                contracts: self.contracts.len(),
                threads: self.threads.len(),
                posts: self.posts.len(),
                chain_txs: self.ledger.len(),
            });
        }
    }

    // -- population ---------------------------------------------------------

    fn spawn_arrivals(&mut self, m: usize, ym: YearMonth, era: Era) {
        let mut n =
            (config::monthly_new_members(m, self.cfg.no_covid) * self.cfg.scale).round() as usize;
        if m == 0 {
            n += (n as f64 * config::INITIAL_POPULATION_FACTOR).round() as usize;
        }
        let mix = config::class_arrival_mix(era);
        for _ in 0..n {
            let class = BehaviourClass::from_index(categorical(&mut self.rng, &mix));
            self.spawn_user(class, m, ym, era);
        }
    }

    fn spawn_user(&mut self, class: BehaviourClass, m: usize, ym: YearMonth, era: Era) -> u32 {
        let idx = self.users.len() as u32;
        let activity_day = self.rng.random_range(0..ym.len_days() as i64);
        let first_active = ym.first_day().plus_days(activity_day);

        // Established members (especially at launch) registered long before
        // the contract system; later cold-starters register days before
        // their first trade.
        let long_standing = match era {
            Era::SetUp => bernoulli(&mut self.rng, 0.7),
            _ => bernoulli(&mut self.rng, 0.2),
        };
        // Registration strictly precedes the spawn month, so any contract
        // the member is party to (which can fall anywhere inside the month)
        // postdates their registration.
        let month_start = ym.first_day();
        let joined = if long_standing {
            month_start.plus_days(-self.rng.random_range(90..1500))
        } else {
            month_start.plus_days(-self.rng.random_range(1..30))
        };

        // ~88% of members have posted somewhere before/around first trade.
        let first_post = if bernoulli(&mut self.rng, 0.88) {
            let lag = self.rng.random_range(0..=first_active.days_since(joined).max(1));
            Some(Timestamp::at(
                joined.plus_days(lag),
                self.rng.random_range(0..24),
                self.rng.random_range(0..60),
            ))
        } else {
            None
        };

        // Reputation scores: SET-UP entrants carry history (median ≈ 96);
        // later cold-starters sit near 33 unless they are power users
        // (outlier median ≈ 157), per §5.2.
        let rep_median = match (era, class.is_power_user()) {
            (Era::SetUp, _) => 96.0,
            (_, true) => 157.0,
            (_, false) => 33.0,
        };
        let reputation =
            (rep_median * (0.35 * standard_normal(&mut self.rng)).exp()).round() as i32;

        // Established power traders are never structural flakes — a single
        // never-completer hub would crater a whole type's completion rate.
        let completer =
            class.is_power_user() || !bernoulli(&mut self.rng, config::NON_COMPLETER_SHARE);
        self.users.push(UserState {
            class,
            active: true,
            made: 0,
            accepted: 0,
            completer,
            rep_pos: 0,
            rep_neg: 0,
        });
        self.user_records.push(User { id: UserId(idx), joined, first_post, reputation });
        self.pools[class.index()].push(idx);
        let _ = m;
        idx
    }

    /// Injects the configured fake negatives against the era's most
    /// successful emerging takers (the would-be power users the paper's
    /// intervention discussion targets).
    fn apply_sybil_attack(&mut self, era: Era) {
        let Some(attack) = self.cfg.sybil else { return };
        if attack.era != era {
            return;
        }
        let mut candidates: Vec<u32> = self
            .pools
            .iter()
            .flatten()
            .copied()
            .filter(|&u| self.users[u as usize].accepted > 0)
            .collect();
        candidates.sort_by_key(|&u| std::cmp::Reverse(self.users[u as usize].accepted));
        for &u in candidates.iter().take(attack.targets_per_month) {
            self.users[u as usize].rep_neg += attack.fakes_per_target;
        }
    }

    fn churn(&mut self) {
        for pool_idx in 0..12 {
            let class = BehaviourClass::from_index(pool_idx);
            let p = config::churn_probability(class);
            let mut kept = Vec::with_capacity(self.pools[pool_idx].len());
            for &u in &self.pools[pool_idx] {
                if bernoulli(&mut self.rng, p) {
                    self.users[u as usize].active = false;
                } else {
                    kept.push(u);
                }
            }
            self.pools[pool_idx] = kept;
        }
    }

    // -- matching -----------------------------------------------------------

    /// Picks a user from `class`'s pool, weighted by `1 + activity` where
    /// activity is prior made (makers) or accepted (takers) contracts —
    /// preferential attachment that grows the Figure 7 hubs. Falls back to
    /// a rate-weighted class if the pool is empty.
    fn pick_user(&mut self, class: BehaviourClass, ty: ContractType, taker_side: bool) -> u32 {
        if self.cfg.uniform_matching {
            // Ablation: uniform over all active users.
            loop {
                let c = self.rng.random_range(0..12);
                if !self.pools[c].is_empty() {
                    let i = self.rng.random_range(0..self.pools[c].len());
                    return self.pools[c][i];
                }
            }
        }
        let class = if self.pools[class.index()].is_empty() {
            self.fallback_class(ty, taker_side)
        } else {
            class
        };
        let pool = &self.pools[class.index()];
        debug_assert!(!pool.is_empty());
        // Preferential attachment: linear in prior acceptances on the taker
        // side (growing the extreme inbound hubs of Figure 7), but damped
        // (square-root) on the maker side — the paper observes many users
        // initiating and only a few accepting, with the outbound maximum an
        // order of magnitude below the inbound one.
        // Taker selection is reputation-aware: makers avoid counterparties
        // with visible negative signals, which is the lever a Sybil attack
        // on trust signals exploits.
        let weight = |users: &[UserState], u: u32| {
            if taker_side {
                let s = &users[u as usize];
                let rep = f64::from(1 + s.rep_pos) / f64::from(1 + s.rep_pos + 3 * s.rep_neg);
                (1.0 + f64::from(s.accepted)) * rep
            } else {
                (1.0 + f64::from(users[u as usize].made)).sqrt()
            }
        };
        if pool.len() > 512 {
            // Rejection sampling against the pool's max weight.
            let max_w = pool.iter().map(|&u| weight(&self.users, u)).fold(1.0f64, f64::max);
            for _ in 0..64 {
                let cand = pool[self.rng.random_range(0..pool.len())];
                if self.rng.random_range(0.0..1.0) < weight(&self.users, cand) / max_w {
                    return cand;
                }
            }
        }
        // Linear cumulative selection.
        let total: f64 = pool.iter().map(|&u| weight(&self.users, u)).sum();
        let mut target = self.rng.random_range(0.0..total);
        for &u in pool {
            let w = weight(&self.users, u);
            if target < w {
                return u;
            }
            target -= w;
        }
        *pool.last().expect("non-empty pool")
    }

    /// A class with active members, weighted by its Table 6 rate for this
    /// role and its pool size.
    fn fallback_class(&mut self, ty: ContractType, taker_side: bool) -> BehaviourClass {
        let weights: Vec<f64> = BehaviourClass::ALL
            .iter()
            .map(|c| {
                let rate = if taker_side { c.accept_rate(ty) } else { c.make_rate(ty) };
                (rate + 0.01) * self.pools[c.index()].len() as f64
            })
            .collect();
        BehaviourClass::from_index(categorical(&mut self.rng, &weights))
    }

    /// Chooses the (maker class, taker class) pair for a contract of `ty`
    /// in `era`, honouring the Table 8 flow shares.
    fn choose_classes(&mut self, ty: ContractType, era: Era) -> (BehaviourClass, BehaviourClass) {
        let flows = flows::flows(ty, era);
        if !flows.is_empty() {
            let covered: f64 = flows.iter().map(|f| f.share).sum();
            if bernoulli(&mut self.rng, covered) {
                let weights: Vec<f64> = flows.iter().map(|f| f.share).collect();
                let f = &flows[categorical(&mut self.rng, &weights)];
                return (f.maker, f.taker);
            }
        }
        let maker = self.fallback_class(ty, false);
        let taker = self.fallback_class(ty, true);
        (maker, taker)
    }

    // -- contracts ----------------------------------------------------------

    fn generate_contracts(&mut self, m: usize, ym: YearMonth, era: Era) {
        let total =
            (config::monthly_created(m, self.cfg.no_covid) * self.cfg.scale).round() as usize;
        let mix = config::type_mix(m);
        for (ti, ty) in ContractType::ALL.into_iter().enumerate() {
            let n = (total as f64 * mix[ti]).round() as usize;
            for _ in 0..n {
                self.generate_contract(m, ym, era, ty);
            }
        }
    }

    fn generate_contract(&mut self, m: usize, ym: YearMonth, era: Era, ty: ContractType) {
        let (maker_class, taker_class) = self.choose_classes(ty, era);
        let maker = self.pick_user(maker_class, ty, false);
        let mut taker = self.pick_user(taker_class, ty, true);
        let mut guard = 0;
        while taker == maker {
            let fallback = self.fallback_class(ty, true);
            taker = self.pick_user(fallback, ty, true);
            guard += 1;
            if guard > 32 {
                // Degenerate tiny-scale corner: spawn a counterparty.
                taker = self.spawn_user(BehaviourClass::J, m, ym, era);
            }
        }

        let created = Timestamp::at(
            ym.first_day().plus_days(self.rng.random_range(0..ym.len_days() as i64)),
            self.rng.random_range(0..24),
            self.rng.random_range(0..60),
        );

        let mut status = self.draw_status(ty, m);
        // Structural zero inflation: deals involving a never-completer
        // overwhelmingly fall through, whatever the parties' activity.
        if status == ContractStatus::Complete
            && (!self.users[maker as usize].completer || !self.users[taker as usize].completer)
            && bernoulli(&mut self.rng, config::NON_COMPLETER_KILL)
        {
            status = ContractStatus::Incomplete;
        }
        let disputed = status == ContractStatus::Disputed;

        // Visibility: per-month baseline × type factor × settlement factor;
        // disputes force publicity.
        let p_public = (config::public_base(m)
            * config::public_type_factor(ty)
            * config::public_status_factor(status == ContractStatus::Complete))
        .clamp(0.0, 0.95);
        let visibility = if disputed || bernoulli(&mut self.rng, p_public) {
            Visibility::Public
        } else {
            Visibility::Private
        };

        // Completion timestamp for ~70% of completed contracts.
        let completed = if status == ContractStatus::Complete
            && bernoulli(&mut self.rng, config::COMPLETION_DATE_RECORDED)
        {
            let mean = config::completion_mean_hours(m, ty);
            // Log-normal around the mean with σ = 0.9 (mean of LN is
            // exp(μ+σ²/2), so μ = ln(mean) − σ²/2).
            let sigma = 0.9;
            let hours = log_normal(&mut self.rng, mean.ln() - sigma * sigma / 2.0, sigma);
            Some(created.plus_hours(hours.clamp(0.05, 2000.0)))
        } else {
            None
        };

        // Contract value (per side), in USD.
        let is_public = visibility == Visibility::Public;
        let mean = config::value_mean_usd(ty).max(8.0);
        let sigma = config::VALUE_SIGMA;
        let mut value =
            log_normal(&mut self.rng, mean.ln() - sigma * sigma / 2.0, sigma).clamp(1.0, 9_861.0);
        let high_value = is_public
            && status == ContractStatus::Complete
            && bernoulli(&mut self.rng, config::HIGH_VALUE_PROBABILITY);
        if high_value {
            value = log_normal(&mut self.rng, 2_200f64.ln(), 0.6).clamp(1_001.0, 9_861.0);
        }
        let typo = is_public && bernoulli(&mut self.rng, 0.004);

        // Obligation text, thread linkage and chain refs only exist for
        // public contracts.
        let (maker_obligation, taker_obligation, thread, chain_ref) = if is_public {
            let content =
                textgen::generate(&mut self.rng, ty, m, value, created.date(), &self.rates, typo);
            let thread = if bernoulli(&mut self.rng, config::THREAD_LINK_PROBABILITY) {
                Some(self.thread_for(maker, &content.thread_title, created))
            } else {
                None
            };
            let chain_ref = if content.btc_involved
                && status == ContractStatus::Complete
                && (high_value || bernoulli(&mut self.rng, 0.02))
            {
                Some(self.plant_chain_ref(value, created, completed))
            } else {
                None
            };
            (content.maker.text, content.taker.text, thread, chain_ref)
        } else {
            (String::new(), String::new(), None, None)
        };

        // B-ratings.
        let (maker_rating, taker_rating) = match status {
            ContractStatus::Complete => {
                // Feedback is far from universal: roughly half of completed
                // contracts receive a rating on each side.
                let mr = if bernoulli(&mut self.rng, 0.55) { Some(1) } else { None };
                let tr = if bernoulli(&mut self.rng, 0.55) { Some(1) } else { None };
                (mr, tr)
            }
            ContractStatus::Disputed => {
                let mr = if bernoulli(&mut self.rng, 0.7) { Some(-1) } else { None };
                let tr = if bernoulli(&mut self.rng, 0.5) { Some(-1) } else { None };
                (mr, tr)
            }
            // Ratings are not strictly tied to completion: parties sometimes
            // leave feedback on deals that fell through amicably (or were
            // renegotiated off-contract), so ratings are an imperfect proxy
            // for completions — as in the real system.
            ContractStatus::Incomplete | ContractStatus::Cancelled => {
                let mr = if bernoulli(&mut self.rng, 0.12) { Some(1) } else { None };
                let tr = if bernoulli(&mut self.rng, 0.12) { Some(1) } else { None };
                (mr, tr)
            }
            _ => (None, None),
        };

        let id = ContractId(self.contracts.len() as u32);
        self.contracts.push(Contract {
            id,
            contract_type: ty,
            status,
            visibility,
            maker: UserId(maker),
            taker: UserId(taker),
            created,
            completed,
            maker_obligation,
            taker_obligation,
            thread,
            maker_rating,
            taker_rating,
            chain_ref,
        });
        self.users[maker as usize].made += 1;
        if status.was_accepted() {
            self.users[taker as usize].accepted += 1;
        }
        // Reputation signals visible to future counterparties.
        match taker_rating {
            Some(r) if r > 0 => self.users[maker as usize].rep_pos += 1,
            Some(_) => self.users[maker as usize].rep_neg += 1,
            None => {}
        }
        match maker_rating {
            Some(r) if r > 0 => self.users[taker as usize].rep_pos += 1,
            Some(_) => self.users[taker as usize].rep_neg += 1,
            None => {}
        }
    }

    fn draw_status(&mut self, ty: ContractType, m: usize) -> ContractStatus {
        let mut mix = config::status_mix(ty);
        // Era-modulated dispute rate; the adjustment is absorbed by the
        // Incomplete bucket so the distribution stays normalised.
        let extra = mix[2] * (config::dispute_multiplier(m) - 1.0);
        mix[2] += extra;
        mix[3] = (mix[3] - extra).max(0.0);
        // Pre-compensate the never-completer downgrades so the aggregate
        // Table 1 completion rates land at the paper's levels. The boost is
        // absorbed by Incomplete first, then Cancelled.
        let boost = mix[0] * (config::complete_boost(ty) - 1.0);
        mix[0] += boost;
        let from_incomplete = boost.min(mix[3]);
        mix[3] -= from_incomplete;
        mix[4] = (mix[4] - (boost - from_incomplete)).max(0.0);
        let statuses = ContractStatus::ALL;
        let mut status = statuses[categorical(&mut self.rng, &mix)];
        // Vouch Copy has no denials in the data.
        if ty == ContractType::VouchCopy && status == ContractStatus::Denied {
            status = ContractStatus::Incomplete;
        }
        status
    }

    // -- threads & posts ----------------------------------------------------

    /// The maker's advertisement thread (created on first use), or
    /// occasionally a general discussion thread.
    fn thread_for(&mut self, maker: u32, title: &str, at: Timestamp) -> ThreadId {
        if bernoulli(&mut self.rng, 0.15) && !self.threads.is_empty() {
            // A general discussion thread from elsewhere on the forum.
            return ThreadId(self.rng.random_range(0..self.threads.len()) as u32);
        }
        if let Some(&t) = self.ad_threads.get(&maker) {
            return t;
        }
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread {
            id,
            author: UserId(maker),
            created: at,
            title: title.to_string(),
            is_advertisement: true,
        });
        self.ad_threads.insert(maker, id);
        // Seed the thread with some chatter.
        let n_posts = poisson(&mut self.rng, 5.0) as usize + 1;
        for k in 0..n_posts {
            let author = if k == 0 { maker } else { self.random_active_user().unwrap_or(maker) };
            self.push_post(id, author, at.plus_minutes((k as i64 + 1) * 37), true);
        }
        id
    }

    fn random_active_user(&mut self) -> Option<u32> {
        for _ in 0..16 {
            let c = self.rng.random_range(0..12);
            if !self.pools[c].is_empty() {
                let i = self.rng.random_range(0..self.pools[c].len());
                return Some(self.pools[c][i]);
            }
        }
        None
    }

    fn push_post(&mut self, thread: ThreadId, author: u32, at: Timestamp, in_marketplace: bool) {
        let id = PostId(self.posts.len() as u32);
        self.posts.push(Post { id, thread, author: UserId(author), at, in_marketplace });
    }

    /// Monthly ambient posting: active members chat in existing threads,
    /// power users far more than one-shot members (this feeds the
    /// "marketplace post count" cold-start control).
    fn ambient_posts(&mut self, _m: usize, ym: YearMonth) {
        if self.threads.is_empty() {
            return;
        }
        for class in BehaviourClass::ALL {
            let rate = if class.is_power_user() {
                6.0
            } else if class.is_single_shot() {
                0.25
            } else {
                1.2
            };
            let pool = self.pools[class.index()].clone();
            for u in pool {
                let n = poisson(&mut self.rng, rate * self.cfg.scale.clamp(0.2, 1.0));
                for _ in 0..n {
                    let t = ThreadId(self.rng.random_range(0..self.threads.len()) as u32);
                    let at = Timestamp::at(
                        ym.first_day().plus_days(self.rng.random_range(0..ym.len_days() as i64)),
                        self.rng.random_range(0..24),
                        self.rng.random_range(0..60),
                    );
                    let in_marketplace = bernoulli(&mut self.rng, 0.8);
                    self.push_post(t, u, at, in_marketplace);
                }
            }
        }
    }

    // -- blockchain ---------------------------------------------------------

    /// Attaches a chain reference to a contract and plants the matching (or
    /// mismatching, or absent) transaction on the ledger at the paper's
    /// observed outcome rates.
    fn plant_chain_ref(
        &mut self,
        claimed_usd: f64,
        created: Timestamp,
        completed: Option<Timestamp>,
    ) -> ChainRef {
        let address = self.hashes.address();
        let confirm_time = completed.unwrap_or_else(|| created.plus_hours(24.0));
        let verdict = categorical(&mut self.rng, &config::VERDICT_MIX);
        self.planted[verdict] += 1;
        let with_hash = bernoulli(&mut self.rng, 0.6);
        let tx_hash = match verdict {
            2 => None, // nothing on chain; a quoted hash would dangle
            _ => {
                let value_usd = match verdict {
                    0 => claimed_usd * self.rng.random_range(0.95..1.05),
                    _ => {
                        if bernoulli(&mut self.rng, 0.8) {
                            // Private renegotiation: usually lower.
                            claimed_usd * self.rng.random_range(0.15..0.85)
                        } else {
                            // Occasionally higher on-chain.
                            claimed_usd * self.rng.random_range(1.15..1.6)
                        }
                    }
                };
                let hash = self.hashes.tx_hash();
                self.ledger.insert(ChainTx {
                    hash: hash.clone(),
                    to_address: address.clone(),
                    value_usd,
                    confirmed_at: confirm_time.plus_minutes(self.rng.random_range(-600..600)),
                });
                with_hash.then_some(hash)
            }
        };
        ChainRef { address, tx_hash }
    }
}

/// Convenience used by tests: the calendar date a study month index maps to.
pub fn month_of_index(i: usize) -> Date {
    config::months()[i].first_day()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimOutput {
        SimConfig::paper_default().with_seed(7).with_scale(0.02).simulate_full()
    }

    #[test]
    fn month_marks_cover_the_study_window_and_are_monotone() {
        let out = small();
        let months = config::months();
        assert_eq!(out.marks.len(), months.len());
        let mut prev = MonthMark {
            month: months[0],
            users: 0,
            contracts: 0,
            threads: 0,
            posts: 0,
            chain_txs: 0,
        };
        for (mark, ym) in out.marks.iter().zip(months.iter()) {
            assert_eq!(mark.month, *ym);
            assert!(mark.users >= prev.users, "cumulative counts must not shrink");
            assert!(mark.contracts >= prev.contracts);
            assert!(mark.threads >= prev.threads);
            assert!(mark.posts >= prev.posts);
            assert!(mark.chain_txs >= prev.chain_txs);
            prev = *mark;
        }
        let last = out.marks.last().unwrap();
        assert_eq!(last.users, out.dataset.users().len());
        assert_eq!(last.contracts, out.dataset.contracts().len());
        assert_eq!(last.threads, out.dataset.threads().len());
        assert_eq!(last.posts, out.dataset.posts().len());
        assert_eq!(last.chain_txs, out.ledger.len());
    }

    #[test]
    fn dataset_is_well_formed() {
        let out = small();
        let violations = out.dataset.validate();
        assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(5)]);
        assert!(out.dataset.contracts().len() > 2_000);
        assert_eq!(out.truth.user_classes.len(), out.dataset.users().len());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate();
        let b = SimConfig::paper_default().with_seed(3).with_scale(0.01).simulate();
        assert_eq!(a.contracts().len(), b.contracts().len());
        assert_eq!(a.contracts()[100], b.contracts()[100]);
        let c = SimConfig::paper_default().with_seed(4).with_scale(0.01).simulate();
        assert_ne!(
            a.contracts()[100].created,
            c.contracts()[100].created,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn sale_dominates_and_exchange_completes_best() {
        let out = small();
        let ds = &out.dataset;
        let count = |ty| ds.contracts().iter().filter(|c| c.contract_type == ty).count();
        let sale = count(ContractType::Sale);
        let exchange = count(ContractType::Exchange);
        let purchase = count(ContractType::Purchase);
        assert!(sale > exchange && exchange > purchase, "{sale}/{exchange}/{purchase}");

        let completion = |ty| {
            let total = count(ty).max(1);
            let done =
                ds.contracts().iter().filter(|c| c.contract_type == ty && c.is_complete()).count();
            done as f64 / total as f64
        };
        assert!(completion(ContractType::Exchange) > 0.6);
        assert!(completion(ContractType::Sale) < 0.4);
    }

    #[test]
    fn privacy_dominates_and_disputes_are_public() {
        let out = small();
        let ds = &out.dataset;
        let public = ds.contracts().iter().filter(|c| c.is_public()).count();
        let share = public as f64 / ds.contracts().len() as f64;
        assert!((0.08..0.20).contains(&share), "public share {share}");
        assert!(ds.contracts().iter().filter(|c| c.is_disputed()).all(Contract::is_public));
    }

    #[test]
    fn covid_spike_in_volumes() {
        let out = small();
        let ds = &out.dataset;
        let by_month = |y, m| ds.contracts_in_month(YearMonth::new(y, m)).count();
        assert!(by_month(2020, 4) > by_month(2020, 2));
        assert!(by_month(2020, 4) > by_month(2018, 6) * 3);
    }

    #[test]
    fn ledger_planting_matches_mix() {
        let out = SimConfig::paper_default().with_seed(11).with_scale(0.1).simulate_full();
        let [c, m, nf] = out.truth.planted_verdicts;
        let total = (c + m + nf).max(1);
        assert!(total > 20, "too few planted refs: {total}");
        let cf = c as f64 / total as f64;
        assert!((0.3..0.7).contains(&cf), "confirmed share {cf}");
        // Every planted (non-not-found) reference resolves on the ledger.
        assert_eq!(out.ledger.len(), c + m);
    }

    #[test]
    fn public_contracts_have_obligations_private_do_not() {
        let out = small();
        for c in out.dataset.contracts().iter().take(5_000) {
            if c.is_public() {
                assert!(!c.maker_obligation.is_empty());
            } else {
                assert!(c.maker_obligation.is_empty());
            }
        }
    }

    #[test]
    fn threads_and_posts_generated() {
        let out = small();
        assert!(!out.dataset.threads().is_empty());
        assert!(out.dataset.posts().len() > out.dataset.threads().len());
        // Some public contracts link to threads.
        let linked =
            out.dataset.contracts().iter().filter(|c| c.is_public() && c.thread.is_some()).count();
        let public = out.dataset.contracts().iter().filter(|c| c.is_public()).count();
        let share = linked as f64 / public.max(1) as f64;
        assert!((0.5..0.85).contains(&share), "thread-link share {share}");
    }

    #[test]
    fn counterfactual_removes_only_the_covid_stimulus() {
        let factual = SimConfig::paper_default().with_seed(6).with_scale(0.03).simulate();
        let counter =
            SimConfig::paper_default().with_seed(6).with_scale(0.03).without_covid().simulate();
        let count_in = |ds: &Dataset, era: Era| ds.contracts_in_era(era).count();
        // SET-UP is untouched (same seed, same targets). STABLE differs
        // only through the 1–10 March 2020 sliver of the changed month, so
        // it is equal to within a couple of percent.
        assert_eq!(count_in(&factual, Era::SetUp), count_in(&counter, Era::SetUp));
        let fs = count_in(&factual, Era::Stable) as f64;
        let cs = count_in(&counter, Era::Stable) as f64;
        assert!((fs / cs - 1.0).abs() < 0.03, "STABLE drifted: {fs} vs {cs}");
        // The COVID era loses its spike.
        let f = count_in(&factual, Era::Covid19) as f64;
        let c = count_in(&counter, Era::Covid19) as f64;
        assert!(f > 1.25 * c, "factual {f} vs counterfactual {c}");
    }

    #[test]
    fn sybil_attack_suppresses_early_hubs_most() {
        let attack =
            |era| crate::config::SybilAttack { era, targets_per_month: 40, fakes_per_target: 20 };
        // Aggregate acceptances of the era's top-40 takers: the attack hits
        // exactly the monthly top-40, so this cohort's in-era volume is the
        // direct suppression signal. (The single global maximum is not a
        // stable metric: crushing the leading takers frees the
        // preferential-attachment race for an unattacked newcomer, which on
        // some seeds overshoots the baseline hub.)
        let top40_in_era = |ds: &Dataset, era: Era| {
            let mut counts: HashMap<UserId, usize> = HashMap::new();
            for c in ds.contracts() {
                if c.status.was_accepted() && c.created_era() == Some(era) {
                    *counts.entry(c.taker).or_default() += 1;
                }
            }
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_by_key(|&x| std::cmp::Reverse(x));
            v.iter().take(40).sum::<usize>()
        };
        let base = SimConfig::paper_default().with_seed(9).with_scale(0.08).simulate();
        let early = SimConfig::paper_default()
            .with_seed(9)
            .with_scale(0.08)
            .with_sybil(attack(Era::SetUp))
            .simulate();
        let (b, e) = (top40_in_era(&base, Era::SetUp), top40_in_era(&early, Era::SetUp));
        // The attack measurably suppresses the top takers of the era it
        // runs in (>5% is well clear of seed noise; typical is 10-30%).
        assert!((e as f64) < 0.95 * b as f64, "early {e} vs base {b}");
        // Volumes stay calibrated: the attack redirects custom, it doesn't
        // destroy it.
        let diff = (early.contracts().len() as f64 / base.contracts().len() as f64 - 1.0).abs();
        assert!(diff < 0.01, "volume drifted by {diff}");
    }

    #[test]
    fn uniform_matching_kills_hubs() {
        let flows_on = SimConfig::paper_default().with_seed(5).with_scale(0.05).simulate();
        let flows_off = SimConfig::paper_default()
            .with_seed(5)
            .with_scale(0.05)
            .with_uniform_matching(true)
            .simulate();
        let max_accepted = |ds: &Dataset| {
            let mut counts: HashMap<UserId, usize> = HashMap::new();
            for c in ds.contracts() {
                *counts.entry(c.taker).or_default() += 1;
            }
            counts.values().copied().max().unwrap_or(0)
        };
        assert!(
            max_accepted(&flows_on) > 3 * max_accepted(&flows_off),
            "{} vs {}",
            max_accepted(&flows_on),
            max_accepted(&flows_off)
        );
    }
}
