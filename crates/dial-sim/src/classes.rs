//! The 12 latent behaviour classes of Table 6.
//!
//! Each class is characterised by mean monthly transaction rates — five
//! "make" rates and five "accept" rates, one per contract type — taken
//! directly from the paper's Table 6. The simulator assigns every user a
//! class at arrival and draws their monthly activity from these rates; the
//! LCA pipeline in `dial-core` must then *re-discover* this structure.

use dial_model::ContractType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A latent behaviour class (A–L), in the paper's Table 6 ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BehaviourClass {
    /// Mid-level SALE taker.
    A,
    /// Exchanger & Sale taker.
    B,
    /// Single SALE maker.
    C,
    /// Single Exchanger.
    D,
    /// Exchanger power-user.
    E,
    /// Mid-level Exchanger.
    F,
    /// Exchanger power-user.
    G,
    /// Mid-level PURCHASE maker.
    H,
    /// Mid-level SALE maker.
    I,
    /// Single SALE taker.
    J,
    /// Exchanger power-user (the heaviest).
    K,
    /// SALE taker power-user.
    L,
}

/// Per-class mean monthly rates: `make[t]` and `accept[t]` indexed by
/// [`ContractType::ALL`] order (Sale, Purchase, Exchange, Trade, VouchCopy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassRates {
    /// Mean monthly contracts made, by type.
    pub make: [f64; 5],
    /// Mean monthly contracts accepted, by type.
    pub accept: [f64; 5],
}

impl BehaviourClass {
    /// All classes in Table 6 order.
    pub const ALL: [BehaviourClass; 12] = [
        BehaviourClass::A,
        BehaviourClass::B,
        BehaviourClass::C,
        BehaviourClass::D,
        BehaviourClass::E,
        BehaviourClass::F,
        BehaviourClass::G,
        BehaviourClass::H,
        BehaviourClass::I,
        BehaviourClass::J,
        BehaviourClass::K,
        BehaviourClass::L,
    ];

    /// Dense index (A = 0 … L = 11).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Class from a dense index.
    pub fn from_index(i: usize) -> BehaviourClass {
        Self::ALL[i]
    }

    /// The paper's behaviour-type description.
    pub fn description(&self) -> &'static str {
        match self {
            BehaviourClass::A => "Mid-level SALE taker",
            BehaviourClass::B => "Exchanger & Sale taker",
            BehaviourClass::C => "Single SALE maker",
            BehaviourClass::D => "Single Exchanger",
            BehaviourClass::E => "Exchanger power-user",
            BehaviourClass::F => "Mid-level Exchanger",
            BehaviourClass::G => "Exchanger power-user",
            BehaviourClass::H => "Mid-level PURCHASE maker",
            BehaviourClass::I => "Mid-level SALE maker",
            BehaviourClass::J => "Single SALE taker",
            BehaviourClass::K => "Exchanger power-user",
            BehaviourClass::L => "SALE taker power-user",
        }
    }

    /// Table 6 rate matrix. Order within arrays follows
    /// [`ContractType::ALL`]: Sale, Purchase, Exchange, Trade, VouchCopy.
    /// (The paper's table lists Exchange first; values are transcribed
    /// accordingly.)
    pub fn rates(&self) -> ClassRates {
        // Table 6 columns: make E, P, S, T, V | accept E, P, S, T, V.
        let (me, mp, ms, mt, mv, ae, ap, aws, at, av) = match self {
            BehaviourClass::A => (0.5, 0.6, 0.5, 0.1, 0.0, 0.5, 0.2, 10.1, 0.2, 0.0),
            BehaviourClass::B => (2.3, 0.4, 0.6, 0.1, 0.0, 6.5, 0.6, 1.1, 0.1, 0.0),
            BehaviourClass::C => (0.0, 0.0, 1.1, 0.0, 0.0, 0.0, 0.2, 0.0, 0.0, 0.0),
            BehaviourClass::D => (0.9, 0.0, 0.1, 0.0, 0.0, 0.9, 0.1, 0.0, 0.0, 0.0),
            BehaviourClass::E => (4.3, 0.7, 2.0, 0.2, 0.0, 22.3, 4.2, 3.8, 0.4, 0.0),
            BehaviourClass::F => (7.3, 0.2, 0.4, 0.0, 0.0, 1.3, 0.2, 0.3, 0.0, 0.0),
            BehaviourClass::G => (21.2, 0.6, 1.3, 0.1, 0.0, 8.1, 1.1, 1.3, 0.1, 0.0),
            BehaviourClass::H => (1.3, 10.0, 0.9, 0.2, 0.0, 1.0, 0.4, 3.2, 0.1, 0.0),
            BehaviourClass::I => (1.1, 0.7, 5.2, 0.2, 0.0, 1.6, 2.0, 1.0, 0.1, 0.0),
            BehaviourClass::J => (0.1, 0.7, 0.1, 0.0, 0.0, 0.1, 0.1, 1.1, 0.0, 0.0),
            BehaviourClass::K => (31.2, 0.9, 3.3, 0.3, 0.0, 54.9, 9.2, 12.8, 1.0, 0.0),
            BehaviourClass::L => (1.3, 1.1, 1.2, 0.2, 0.1, 1.5, 0.6, 54.9, 0.2, 0.0),
        };
        ClassRates { make: [ms, mp, me, mt, mv], accept: [aws, ap, ae, at, av] }
    }

    /// Mean monthly contracts made of one type.
    pub fn make_rate(&self, ty: ContractType) -> f64 {
        self.rates().make[type_index(ty)]
    }

    /// Mean monthly contracts accepted of one type.
    pub fn accept_rate(&self, ty: ContractType) -> f64 {
        self.rates().accept[type_index(ty)]
    }

    /// True for the low-volume classes whose members typically appear for a
    /// single transaction (drives churn in the population model).
    pub fn is_single_shot(&self) -> bool {
        matches!(self, BehaviourClass::C | BehaviourClass::D | BehaviourClass::J)
    }

    /// True for power-user classes (persist across the study).
    pub fn is_power_user(&self) -> bool {
        matches!(
            self,
            BehaviourClass::E | BehaviourClass::G | BehaviourClass::K | BehaviourClass::L
        )
    }
}

impl fmt::Display for BehaviourClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// Index of a contract type in [`ContractType::ALL`] order.
pub fn type_index(ty: ContractType) -> usize {
    ContractType::ALL.iter().position(|t| *t == ty).expect("known type")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_spot_checks() {
        // Class K makes 31.2 Exchange and accepts 54.9 Exchange per month.
        assert_eq!(BehaviourClass::K.make_rate(ContractType::Exchange), 31.2);
        assert_eq!(BehaviourClass::K.accept_rate(ContractType::Exchange), 54.9);
        // Class L accepts 54.9 Sale per month.
        assert_eq!(BehaviourClass::L.accept_rate(ContractType::Sale), 54.9);
        // Class C makes 1.1 Sale and nothing else.
        assert_eq!(BehaviourClass::C.make_rate(ContractType::Sale), 1.1);
        assert_eq!(BehaviourClass::C.make_rate(ContractType::Exchange), 0.0);
        // Class H makes 10 Purchase per month.
        assert_eq!(BehaviourClass::H.make_rate(ContractType::Purchase), 10.0);
        // Only class L makes Vouch Copies in Table 6.
        assert_eq!(BehaviourClass::L.make_rate(ContractType::VouchCopy), 0.1);
    }

    #[test]
    fn index_round_trip() {
        for (i, c) in BehaviourClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(BehaviourClass::from_index(i), c);
        }
    }

    #[test]
    fn class_roles() {
        assert!(BehaviourClass::C.is_single_shot());
        assert!(BehaviourClass::K.is_power_user());
        assert!(!BehaviourClass::K.is_single_shot());
        assert!(!BehaviourClass::A.is_power_user());
    }
}
