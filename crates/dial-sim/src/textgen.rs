//! Obligation-text generation.
//!
//! Public contracts carry free-text maker/taker obligation sections; the
//! analysis pipelines re-mine them with `dial-text`. This module renders
//! those sections from per-category phrase banks and payment-method
//! templates whose mixes are calibrated to Tables 3–5, with era modulation
//! matching the product-evolution shapes of Figure 9 and the payment-method
//! evolution of Figure 10.

use crate::dist::{bernoulli, categorical};
use dial_fx::{Currency, RateProvider, SyntheticRates};
use dial_time::Date;
use rand::Rng;

/// Product families used to build obligation text. These deliberately
/// mirror the paper's activity buckets — the simulator writes in the same
/// vocabulary the miners must parse, exactly as real traders do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductKind {
    Giftcard,
    Accounts,
    Gaming,
    Hackforums,
    Multimedia,
    Hacking,
    SocialBoost,
    Tutorials,
    Tools,
    Marketing,
    Ewhoring,
    Delivery,
    Academic,
    Contest,
    Misc,
}

impl ProductKind {
    const ALL: [ProductKind; 15] = [
        ProductKind::Giftcard,
        ProductKind::Accounts,
        ProductKind::Gaming,
        ProductKind::Hackforums,
        ProductKind::Multimedia,
        ProductKind::Hacking,
        ProductKind::SocialBoost,
        ProductKind::Tutorials,
        ProductKind::Tools,
        ProductKind::Marketing,
        ProductKind::Ewhoring,
        ProductKind::Delivery,
        ProductKind::Academic,
        ProductKind::Contest,
        ProductKind::Misc,
    ];

    /// A phrase advertising a product of this family.
    fn phrase(&self, rng: &mut impl Rng) -> &'static str {
        let bank: &[&'static str] = match self {
            ProductKind::Giftcard => &[
                "amazon gift card",
                "steam wallet giftcard",
                "google play giftcard",
                "itunes gift card code",
                "xbox giftcard voucher code",
            ],
            ProductKind::Accounts => &[
                "netflix account with warranty",
                "spotify premium account",
                "windows license key",
                "nordvpn account subscription",
                "office license key and serial",
            ],
            ProductKind::Gaming => &[
                "fortnite account rare skins",
                "minecraft alts bundle",
                "osrs gold ingame",
                "csgo skins collection",
                "runescape gold coins",
            ],
            ProductKind::Hackforums => &[
                "500k bytes",
                "vouch copy of my product",
                "hf upgrade and award banner",
                "bytes bundle for upgrade",
            ],
            ProductKind::Multimedia => &[
                "custom logo design",
                "youtube thumbnail design",
                "video editing service",
                "discord banner gfx and animation",
                "intro graphics illustration",
            ],
            ProductKind::Hacking => &[
                "python script development",
                "website development work",
                "crypter fud service",
                "custom coding by experienced developer",
                "pentest of your site",
            ],
            ProductKind::SocialBoost => &[
                "1000 instagram followers",
                "youtube views and likes",
                "tiktok follower boost",
                "twitter engagement and retweets",
                "reddit upvotes social boost",
            ],
            ProductKind::Tutorials => &[
                "ebook money method",
                "youtube method guide",
                "passive income course",
                "cpa method tutorial",
                "mentoring and guide bundle",
            ],
            ProductKind::Tools => &[
                "discord bot",
                "account checker tool",
                "automation software program",
                "keyword generator tool",
                "macro bot for tasks",
            ],
            ProductKind::Marketing => &[
                "seo promotion package",
                "banner advertising slots",
                "traffic promotion service",
                "advert placement marketing",
            ],
            ProductKind::Ewhoring => {
                &["ewhoring pack", "camgirl pack with pics", "ewhore pack of pictures"]
            }
            ProductKind::Delivery => &[
                "refund service for parcels",
                "dropshipping parcel service",
                "shipping and delivery handling",
            ],
            ProductKind::Academic => &[
                "essay writing help",
                "dissertation chapter",
                "homework assignment solutions",
                "coursework and thesis help",
            ],
            ProductKind::Contest => {
                &["giveaway entry", "graphics contest award", "raffle ticket for the lottery"]
            }
            ProductKind::Misc => &[
                "item as discussed",
                "private deal",
                "misc stuff we agreed on",
                "the thing from pm",
            ],
        };
        bank[rng.random_range(0..bank.len())]
    }

    /// Era-modulated selection weights for SALE/PURCHASE/TRADE products,
    /// shaped after Figure 9: gaming peaks in SET-UP; hackforums-related
    /// grows in SET-UP, slips back, then tops the COVID-19 ranking;
    /// multimedia rises steadily through COVID-19; giftcards lead overall.
    fn weights(month_index: usize) -> [f64; 15] {
        let setup = month_index < 9;
        let covid = month_index >= 21;
        let late_covid = month_index >= 23;
        let gaming = if setup {
            0.14
        } else if covid {
            0.07
        } else {
            0.06
        };
        let hackforums = if setup {
            0.09
        } else if late_covid {
            0.20
        } else if covid {
            0.12
        } else {
            0.055
        };
        let multimedia = if covid { 0.11 } else { 0.05 };
        [
            0.155,      // Giftcard
            0.115,      // Accounts
            gaming,     // Gaming
            hackforums, // Hackforums
            multimedia, // Multimedia
            0.048,      // Hacking
            0.042,      // SocialBoost
            0.040,      // Tutorials
            0.036,      // Tools
            0.020,      // Marketing
            0.016,      // Ewhoring
            0.013,      // Delivery
            0.013,      // Academic
            0.010,      // Contest
            0.150,      // Misc (too vague to categorise)
        ]
    }

    /// Samples a product for a goods-bearing contract created in the given
    /// month.
    pub fn sample(rng: &mut impl Rng, month_index: usize) -> ProductKind {
        Self::ALL[categorical(rng, &Self::weights(month_index))]
    }
}

/// Payment instruments with their rendering vocabulary and denomination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayMethod {
    Bitcoin,
    PayPal,
    AmazonGiftcard,
    Cashapp,
    Cash,
    Ethereum,
    Venmo,
    VBucks,
    Zelle,
    BitcoinCash,
    ApplePay,
    Litecoin,
    Monero,
    Skrill,
}

impl PayMethod {
    const ALL: [PayMethod; 14] = [
        PayMethod::Bitcoin,
        PayMethod::PayPal,
        PayMethod::AmazonGiftcard,
        PayMethod::Cashapp,
        PayMethod::Cash,
        PayMethod::Ethereum,
        PayMethod::Venmo,
        PayMethod::VBucks,
        PayMethod::Zelle,
        PayMethod::BitcoinCash,
        PayMethod::ApplePay,
        PayMethod::Litecoin,
        PayMethod::Monero,
        PayMethod::Skrill,
    ];

    /// Selection weights calibrated to Table 4 (Bitcoin ≈ 75% of completed
    /// money contracts, PayPal ≈ 38%, Amazon third). Cashapp rises through
    /// COVID-19 to overtake PayPal at the very end (Figure 10).
    fn weights(month_index: usize) -> [f64; 14] {
        let cashapp = match month_index {
            23 => 0.14,
            24 => 0.30,
            m if m >= 21 => 0.08,
            _ => 0.048,
        };
        let paypal = if month_index == 24 { 0.13 } else { 0.210 };
        [
            0.405,   // Bitcoin
            paypal,  // PayPal
            0.092,   // AmazonGiftcard
            cashapp, // Cashapp
            0.034,   // Cash/USD
            0.024,   // Ethereum
            0.013,   // Venmo
            0.011,   // VBucks
            0.009,   // Zelle
            0.004,   // BitcoinCash
            0.006,   // ApplePay
            0.003,   // Litecoin
            0.002,   // Monero
            0.002,   // Skrill
        ]
    }

    /// Samples a payment method for the given month.
    pub fn sample(rng: &mut impl Rng, month_index: usize) -> PayMethod {
        Self::ALL[categorical(rng, &Self::weights(month_index))]
    }

    /// Samples a method for a trade of the given USD size. High-value deals
    /// run disproportionately on Bitcoin (§4.5: the manually-checked
    /// high-value trades are "mostly related to Bitcoin and PayPal (or
    /// Cashapp) exchanges", with Bitcoin 2.4x PayPal by value).
    pub fn sample_for_value(rng: &mut impl Rng, month_index: usize, usd: f64) -> PayMethod {
        let mut w = Self::weights(month_index);
        if usd > 250.0 {
            let boost = if usd > 1000.0 { 4.0 } else { 2.0 };
            w[0] *= boost; // Bitcoin
            w[1] /= boost; // PayPal
            w[2] /= boost; // Amazon giftcards skew small-ticket
        }
        Self::ALL[categorical(rng, &w)]
    }

    /// Samples a second, different method (for two-sided exchanges).
    pub fn sample_other(rng: &mut impl Rng, month_index: usize, not: PayMethod) -> PayMethod {
        for _ in 0..16 {
            let m = Self::sample(rng, month_index);
            if m != not {
                return m;
            }
        }
        if not == PayMethod::PayPal {
            PayMethod::Bitcoin
        } else {
            PayMethod::PayPal
        }
    }

    /// True if this method settles on the Bitcoin chain (candidates for
    /// planted ledger references).
    pub fn is_bitcoin(&self) -> bool {
        matches!(self, PayMethod::Bitcoin)
    }

    /// Renders a USD amount in this method's vocabulary, converting
    /// crypto/virtual units at the day's rate so the value pipeline can
    /// convert back.
    pub fn render(&self, usd: f64, date: Date, rates: &SyntheticRates) -> String {
        let cur = |c: Currency| rates.usd_rate(c, date);
        match self {
            PayMethod::Bitcoin => format!("{:.5} btc", usd / cur(Currency::Btc)),
            PayMethod::PayPal => format!("${} paypal", usd.round()),
            PayMethod::AmazonGiftcard => format!("${} amazon giftcard", usd.round()),
            PayMethod::Cashapp => format!("${} cashapp", usd.round()),
            PayMethod::Cash => format!("{} usd cash", usd.round()),
            PayMethod::Ethereum => format!("{:.4} eth", usd / cur(Currency::Eth)),
            PayMethod::Venmo => format!("${} venmo", usd.round()),
            PayMethod::VBucks => {
                format!("{} vbucks", (usd / cur(Currency::VBucks)).round())
            }
            PayMethod::Zelle => format!("${} zelle", usd.round()),
            PayMethod::BitcoinCash => format!("{:.4} bch", usd / cur(Currency::Bch)),
            PayMethod::ApplePay => format!("${} apple pay", usd.round()),
            PayMethod::Litecoin => format!("{:.3} ltc", usd / cur(Currency::Ltc)),
            PayMethod::Monero => format!("{:.3} xmr", usd / cur(Currency::Xmr)),
            PayMethod::Skrill => format!("${} skrill", usd.round()),
        }
    }
}

/// One rendered obligation side.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedSide {
    /// The obligation text.
    pub text: String,
}

/// Generated content for one public contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractContent {
    /// Maker obligation text.
    pub maker: RenderedSide,
    /// Taker obligation text.
    pub taker: RenderedSide,
    /// True if a Bitcoin leg is present (chain references may be attached).
    pub btc_involved: bool,
    /// An advertisement-thread title consistent with the goods.
    pub thread_title: String,
}

/// Renders obligation texts for a public contract.
///
/// * `value_usd` — the per-side contractual value; both legs of an exchange
///   quote (approximately) this value in their own instrument.
/// * `typo` — if true, the quoted number on one side is inflated ×10,
///   reproducing the "values exceeding $10,000 are likely typing errors"
///   observation of §4.5.
pub fn generate(
    rng: &mut impl Rng,
    ty: dial_model::ContractType,
    month_index: usize,
    value_usd: f64,
    date: Date,
    rates: &SyntheticRates,
    typo: bool,
) -> ContractContent {
    use dial_model::ContractType as Ct;
    let typo_factor = if typo { 10.0 } else { 1.0 };
    match ty {
        Ct::Exchange => {
            // Overwhelmingly currency exchange; a sliver are goods swaps.
            if bernoulli(rng, 0.92) {
                let a = PayMethod::sample_for_value(rng, month_index, value_usd);
                let b = PayMethod::sample_other(rng, month_index, a);
                // A majority of currency swaps also read as money-transfer
                // services (Table 3: payments ≈ 59% of currency exchange).
                let service = if bernoulli(rng, 0.55) { " money transfer" } else { "" };
                let maker = format!(
                    "exchange sending {} for your {}{service}",
                    a.render(value_usd * typo_factor, date, rates),
                    b.render(value_usd, date, rates),
                );
                let taker_tail = if bernoulli(rng, 0.35) { " payment" } else { "" };
                let taker = if bernoulli(rng, 0.5) {
                    format!(
                        "exchange sending {} for your {}{taker_tail}",
                        b.render(value_usd, date, rates),
                        a.render(value_usd, date, rates),
                    )
                } else {
                    format!("exchange sending {}{taker_tail}", b.render(value_usd, date, rates))
                };
                ContractContent {
                    maker: RenderedSide { text: maker },
                    taker: RenderedSide { text: taker },
                    btc_involved: a.is_bitcoin() || b.is_bitcoin(),
                    thread_title: "[Exchange] currency exchange service".into(),
                }
            } else {
                let kind = ProductKind::sample(rng, month_index);
                let p = kind.phrase(rng);
                let m = PayMethod::sample(rng, month_index);
                ContractContent {
                    maker: RenderedSide { text: format!("exchange my {p}") },
                    taker: RenderedSide {
                        text: format!("sending {}", m.render(value_usd, date, rates)),
                    },
                    btc_involved: m.is_bitcoin(),
                    thread_title: format!("[Exchange] {p}"),
                }
            }
        }
        Ct::Sale => {
            // About half of sales are *currency sales* — selling Bitcoin
            // balances, PayPal funds or giftcard credit for another
            // instrument. This is why the paper's currency-exchange bucket
            // (9,516 contracts) exceeds the count of EXCHANGE-type
            // contracts: currency trades flow through SALE contracts too.
            if bernoulli(rng, 0.5) {
                let a = PayMethod::sample_for_value(rng, month_index, value_usd);
                let b = PayMethod::sample_other(rng, month_index, a);
                let service = if bernoulli(rng, 0.55) { " money transfer" } else { "" };
                let maker = format!(
                    "selling {} for {}{service}",
                    a.render(value_usd * typo_factor, date, rates),
                    b.render(value_usd, date, rates),
                );
                let taker_service = if bernoulli(rng, 0.25) { " money transfer" } else { "" };
                let taker = format!(
                    "exchange sending {} for your {}{taker_service}",
                    b.render(value_usd, date, rates),
                    a.render(value_usd, date, rates),
                );
                return ContractContent {
                    maker: RenderedSide { text: maker },
                    taker: RenderedSide { text: taker },
                    btc_involved: a.is_bitcoin() || b.is_bitcoin(),
                    thread_title: "[Selling] currency at great rates".into(),
                };
            }
            let kind = ProductKind::sample(rng, month_index);
            let p = kind.phrase(rng);
            let m = PayMethod::sample_for_value(rng, month_index, value_usd);
            let price = m.render(value_usd * typo_factor, date, rates);
            let maker = if bernoulli(rng, 0.5) {
                format!("selling {p} for {price}")
            } else {
                format!("selling {p}")
            };
            let taker_tail = if bernoulli(rng, 0.5) { " payment" } else { "" };
            let taker = format!("sending {}{taker_tail}", m.render(value_usd, date, rates));
            ContractContent {
                maker: RenderedSide { text: maker },
                taker: RenderedSide { text: taker },
                btc_involved: m.is_bitcoin(),
                thread_title: format!("[Selling] {p}"),
            }
        }
        Ct::Purchase => {
            // Mirror of Sale: many purchases are buying currency balances.
            if bernoulli(rng, 0.45) {
                let a = PayMethod::sample_for_value(rng, month_index, value_usd);
                let b = PayMethod::sample_other(rng, month_index, a);
                let maker = format!(
                    "buying {}, paying with {}",
                    a.render(value_usd * typo_factor, date, rates),
                    b.render(value_usd, date, rates),
                );
                let taker = format!(
                    "exchange sending {} for {}",
                    a.render(value_usd, date, rates),
                    b.render(value_usd, date, rates),
                );
                return ContractContent {
                    maker: RenderedSide { text: maker },
                    taker: RenderedSide { text: taker },
                    btc_involved: a.is_bitcoin() || b.is_bitcoin(),
                    thread_title: "[Buying] currency".into(),
                };
            }
            let kind = ProductKind::sample(rng, month_index);
            let p = kind.phrase(rng);
            let m = PayMethod::sample_for_value(rng, month_index, value_usd);
            let maker =
                format!("buying {p}, paying {}", m.render(value_usd * typo_factor, date, rates));
            let taker = format!("providing {p}");
            ContractContent {
                maker: RenderedSide { text: maker },
                taker: RenderedSide { text: taker },
                btc_involved: m.is_bitcoin(),
                thread_title: format!("[Buying] {p}"),
            }
        }
        Ct::Trade => {
            let a = ProductKind::sample(rng, month_index).phrase(rng);
            let b = ProductKind::sample(rng, month_index).phrase(rng);
            // Traders often state the value of the goods being swapped.
            let maker = if bernoulli(rng, 0.6) {
                format!("trading my {a} (${}) for {b}", value_usd.round())
            } else {
                format!("trading my {a} for {b}")
            };
            ContractContent {
                maker: RenderedSide { text: maker },
                taker: RenderedSide { text: format!("trading {b}") },
                btc_involved: false,
                thread_title: format!("[Trading] {a}"),
            }
        }
        Ct::VouchCopy => {
            let p = ProductKind::sample(rng, month_index).phrase(rng);
            ContractContent {
                maker: RenderedSide { text: format!("vouch copy of {p}") },
                taker: RenderedSide { text: "will leave vouch and honest review".into() },
                btc_involved: false,
                thread_title: format!("[Vouch Copy] {p}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_model::ContractType;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exchange_text_is_mostly_currency_exchange() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rates = SyntheticRates;
        let date = Date::from_ymd(2019, 6, 1);
        let mut currency = 0;
        for _ in 0..500 {
            let c = generate(&mut rng, ContractType::Exchange, 12, 50.0, date, &rates, false);
            if c.maker.text.contains("exchange") {
                currency += 1;
            }
            assert!(!c.maker.text.is_empty() && !c.taker.text.is_empty());
        }
        assert!(currency > 440);
    }

    #[test]
    fn bitcoin_renders_in_btc_units() {
        let rates = SyntheticRates;
        let date = Date::from_ymd(2019, 6, 1); // BTC ≈ $8,000
        let s = PayMethod::Bitcoin.render(80.0, date, &rates);
        assert!(s.ends_with("btc"), "{s}");
        let amount: f64 = s.split_whitespace().next().unwrap().parse().unwrap();
        assert!((amount - 0.01).abs() < 0.001, "{s}");
    }

    #[test]
    fn typo_inflates_one_side_tenfold() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rates = SyntheticRates;
        let date = Date::from_ymd(2019, 6, 1);
        let c = generate(&mut rng, ContractType::Purchase, 12, 200.0, date, &rates, true);
        // The maker quotes 2000 instead of 200 in some instrument.
        assert!(c.maker.text.contains("buying"));
    }

    #[test]
    fn product_weights_shift_with_era() {
        // Hackforums-related share at the end of COVID-19 far exceeds
        // mid-STABLE (Figure 9's final ranking).
        let w_stable = ProductKind::weights(14)[3];
        let w_covid = ProductKind::weights(24)[3];
        assert!(w_covid > 3.0 * w_stable);
    }

    #[test]
    fn cashapp_overtakes_paypal_at_the_end() {
        let w = PayMethod::weights(24);
        assert!(w[3] > w[1], "Cashapp {} vs PayPal {}", w[3], w[1]);
        let w_early = PayMethod::weights(10);
        assert!(w_early[1] > w_early[3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let rates = SyntheticRates;
        let date = Date::from_ymd(2020, 4, 1);
        let a = generate(
            &mut ChaCha8Rng::seed_from_u64(5),
            ContractType::Sale,
            22,
            30.0,
            date,
            &rates,
            false,
        );
        let b = generate(
            &mut ChaCha8Rng::seed_from_u64(5),
            ContractType::Sale,
            22,
            30.0,
            date,
            &rates,
            false,
        );
        assert_eq!(a, b);
    }
}
