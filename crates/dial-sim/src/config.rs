//! Simulation configuration and the calibration constants distilled from
//! the paper's published aggregates.

use crate::classes::BehaviourClass;
use dial_model::ContractType;
use dial_time::{Era, StudyWindow, YearMonth};
use serde::{Deserialize, Serialize};

/// A simulated Sybil attack on the market's trust signals.
///
/// §7 of the paper suggests interventions that confuse trust signals
/// (spurious negative reviews) "are best targeted in the early days of
/// market formation, before this concentration effect takes root". The
/// attack injects fake negative reputation against the era's most
/// successful emerging takers each month; reputation-aware matching then
/// steers custom away from them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SybilAttack {
    /// The era during which fake negatives are injected.
    pub era: Era,
    /// How many top takers are targeted each month.
    pub targets_per_month: usize,
    /// Fake negative signals injected per target per month.
    pub fakes_per_target: u32,
}

/// Top-level simulator configuration.
///
/// `paper_default()` encodes the full calibration; `scale` shrinks every
/// volume target proportionally (useful for tests: `scale = 0.02` yields a
/// ~4k-contract market in milliseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// PRNG seed; equal seeds give bit-identical datasets.
    pub seed: u64,
    /// Volume scale factor (1.0 = the paper's ~190k contracts).
    pub scale: f64,
    /// Ablation switch: match makers to takers uniformly at random instead
    /// of via flow preferences + preferential attachment. Destroys the hub
    /// structure of Figure 7.
    pub uniform_matching: bool,
    /// Optional Sybil attack on trust signals (§7 intervention study).
    pub sybil: Option<SybilAttack>,
    /// Counterfactual switch: continue the late-STABLE trends through the
    /// COVID-19 months instead of applying the pandemic stimulus. The
    /// difference between a factual and counterfactual run isolates the
    /// uplift attributable to the pandemic ("turning up the dial").
    pub no_covid: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SimConfig {
    /// The calibration used throughout the reproduction.
    pub fn paper_default() -> Self {
        Self { seed: 0xD1A1, scale: 1.0, uniform_matching: false, sybil: None, no_covid: false }
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different volume scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Returns the config with uniform (ablation) matching.
    pub fn with_uniform_matching(mut self, on: bool) -> Self {
        self.uniform_matching = on;
        self
    }

    /// Returns the config with a Sybil attack enabled.
    pub fn with_sybil(mut self, attack: SybilAttack) -> Self {
        self.sybil = Some(attack);
        self
    }

    /// Returns the no-COVID counterfactual configuration.
    pub fn without_covid(mut self) -> Self {
        self.no_covid = true;
        self
    }

    /// Convenience: run the simulation and return just the dataset.
    pub fn simulate(&self) -> dial_model::Dataset {
        crate::market::simulate(self).dataset
    }

    /// Run the simulation and return dataset + ledger + ground truth.
    pub fn simulate_full(&self) -> crate::market::SimOutput {
        crate::market::simulate(self)
    }
}

/// Parses a user-supplied `--scale` value, rejecting anything that would
/// drive the generator into a degenerate regime: [`SimConfig::with_scale`]
/// only asserts positivity, so an unchecked `+inf` (or a silent parse
/// fallback) would otherwise slip through and produce an empty or absurd
/// market. Returns the parsed scale or a message suitable for direct CLI
/// display.
pub fn parse_scale(raw: &str) -> Result<f64, String> {
    let scale: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("invalid --scale {raw:?}: expected a number, e.g. 0.1"))?;
    if !scale.is_finite() {
        return Err(format!("invalid --scale {raw:?}: must be finite"));
    }
    if scale <= 0.0 {
        return Err(format!("invalid --scale {raw:?}: must be > 0"));
    }
    Ok(scale)
}

// ---------------------------------------------------------------------------
// Volume calibration (Figure 1).
// ---------------------------------------------------------------------------

/// Target created contracts per study month (25 entries, June 2018 →
/// June 2020). Shape: slow SET-UP growth; a 172% jump at the March 2019
/// mandate peaking in April 2019; slow decline with a Christmas bump; the
/// short sharp COVID spike peaking in April 2020 above the 2019 peak.
pub const MONTHLY_CREATED: [f64; 25] = [
    // SET-UP: Jun 2018 .. Feb 2019
    2400.0, 2600.0, 2800.0, 3000.0, 3200.0, 3500.0, 3800.0, 4100.0, 4400.0,
    // STABLE: Mar 2019 .. Feb 2020
    11950.0, 12400.0, 11300.0, 10600.0, 10000.0, 9600.0, 9200.0, 8800.0, 8500.0, 9000.0, 8300.0,
    7800.0, // COVID-19: Mar 2020 .. Jun 2020
    10400.0, 13100.0, 9900.0, 8200.0,
];

/// Target new members becoming party to a contract per month. SET-UP
/// decline, the March-2019 rush (+276% on February), decline to ~1,500, and
/// a moderate COVID bump that does *not* outpace the 2019 peak.
pub const MONTHLY_NEW_MEMBERS: [f64; 25] = [
    1900.0, 1850.0, 1800.0, 1750.0, 1650.0, 1550.0, 1450.0, 1400.0, 1330.0, // SET-UP
    5000.0, 4200.0, 3400.0, 2900.0, 2600.0, 2400.0, 2200.0, 2000.0, 1850.0, 1750.0, 1600.0,
    1500.0, // STABLE
    2100.0, 2600.0, 1900.0, 1500.0, // COVID-19
];

/// Initial (month-0) population multiple of month-0 arrivals: established
/// forum members who adopt the contract system at launch.
pub const INITIAL_POPULATION_FACTOR: f64 = 1.5;

/// Counterfactual COVID-19-era volumes: the late-STABLE linear decline
/// (~-400 created/month, ~-100 new members/month) extended through
/// March–June 2020, replacing the pandemic stimulus.
pub const COUNTERFACTUAL_CREATED: [f64; 4] = [7500.0, 7200.0, 6900.0, 6600.0];

/// Counterfactual monthly new members under the same trend extension.
pub const COUNTERFACTUAL_NEW_MEMBERS: [f64; 4] = [1420.0, 1350.0, 1280.0, 1210.0];

/// Monthly created-contract target, honouring the counterfactual switch.
pub fn monthly_created(month_index: usize, no_covid: bool) -> f64 {
    if no_covid && month_index >= 21 {
        COUNTERFACTUAL_CREATED[month_index - 21]
    } else {
        MONTHLY_CREATED[month_index]
    }
}

/// Monthly new-member target, honouring the counterfactual switch.
pub fn monthly_new_members(month_index: usize, no_covid: bool) -> f64 {
    if no_covid && month_index >= 21 {
        COUNTERFACTUAL_NEW_MEMBERS[month_index - 21]
    } else {
        MONTHLY_NEW_MEMBERS[month_index]
    }
}

// ---------------------------------------------------------------------------
// Contract-type mix (Figure 3, Table 1 totals).
// ---------------------------------------------------------------------------

/// Created-contract type mix for a given month, in [`ContractType::ALL`]
/// order (Sale, Purchase, Exchange, Trade, VouchCopy).
///
/// SET-UP starts Exchange-dominated (~50%) with SALE ~40%; the mandate
/// flips the market to SALE-dominated (>70% created). Vouch Copy appears in
/// February 2020 and grows through COVID-19.
pub fn type_mix(month_index: usize) -> [f64; 5] {
    let m = month_index as f64;
    let vouch = match month_index {
        0..=19 => 0.0,                   // before Feb 2020
        20 => 0.004,                     // Feb 2020 introduction
        _ => 0.006 + 0.002 * (m - 20.0), // grows through COVID-19
    };
    let (sale, purchase, exchange, trade) = if month_index < 9 {
        // Drift across SET-UP: Exchange 50→41%, Sale 40→45%, Purchase 9→12%.
        let t = m / 8.0;
        (0.40 + 0.05 * t, 0.09 + 0.03 * t, 0.50 - 0.09 * t, 0.01 + 0.003 * t)
    } else {
        // STABLE / COVID-19 plateau.
        (0.715, 0.105, 0.163, 0.013)
    };
    // Normalise the four economic types to share `1 − vouch` exactly.
    let econ = sale + purchase + exchange + trade;
    let rest = (1.0 - vouch) / econ;
    [sale * rest, purchase * rest, exchange * rest, trade * rest, vouch]
}

// ---------------------------------------------------------------------------
// Status distribution (Table 1, conditioned on type).
// ---------------------------------------------------------------------------

/// Conditional status distribution per type, in
/// [`dial_model::ContractStatus::ALL`] order (Complete, ActiveDeal,
/// Disputed, Incomplete, Cancelled, Denied, Expired). Derived from Table 1
/// row proportions.
pub fn status_mix(ty: ContractType) -> [f64; 7] {
    match ty {
        ContractType::Sale => [0.3267, 0.0158, 0.0083, 0.5432, 0.0556, 0.0005, 0.0498],
        ContractType::Purchase => [0.5309, 0.0004, 0.0281, 0.2099, 0.1061, 0.0013, 0.1232],
        ContractType::Exchange => [0.6975, 0.0001, 0.0113, 0.0828, 0.1426, 0.0016, 0.0641],
        ContractType::Trade => [0.5638, 0.0004, 0.0089, 0.2328, 0.0838, 0.0013, 0.1089],
        ContractType::VouchCopy => [0.5769, 0.0, 0.0031, 0.2324, 0.0571, 0.0, 0.1305],
    }
}

/// Era modulation of the dispute rate: "low levels of disputed transactions
/// (around 1%) ... peak to 2-3% for the last six months of SET-UP", then
/// drop to "around half or a third" at the start of STABLE.
pub fn dispute_multiplier(month_index: usize) -> f64 {
    match month_index {
        0..=2 => 1.0,
        3..=8 => 2.6, // late SET-UP spike
        _ => 0.8,     // STABLE / COVID-19
    }
}

// ---------------------------------------------------------------------------
// Visibility (Table 2, Figure 2).
// ---------------------------------------------------------------------------

/// Baseline probability that a contract created in `month_index` is public.
/// ~45% at launch, peaking just over 50% in August 2018, falling to ~20% by
/// the end of SET-UP and ~10% once contracts become mandatory.
pub fn public_base(month_index: usize) -> f64 {
    match month_index {
        0 => 0.45,
        1 => 0.48,
        2 => 0.51, // August 2018 peak
        3 => 0.44,
        4 => 0.38,
        5 => 0.32,
        6 => 0.27,
        7 => 0.23,
        8 => 0.20,
        _ => 0.10,
    }
}

/// Per-type multiplier on the public baseline. Sellers prefer privacy
/// (SALE public share ≈ 8% of SALE overall); the other types run ~20%.
pub fn public_type_factor(ty: ContractType) -> f64 {
    match ty {
        ContractType::Sale => 0.56,
        ContractType::Purchase => 1.16,
        ContractType::Exchange => 0.76,
        ContractType::Trade => 1.55,
        ContractType::VouchCopy => 1.43,
    }
}

/// Visibility is correlated with settlement: "public contracts are more
/// likely to be settled, with 57.0% of transactions completed compared to
/// 41.7% in private contracts" (§3). Applied as a multiplier on the public
/// probability by eventual status.
pub fn public_status_factor(complete: bool) -> f64 {
    if complete {
        1.45
    } else {
        0.85
    }
}

// ---------------------------------------------------------------------------
// Completion times (Figure 4).
// ---------------------------------------------------------------------------

/// Mean completion time in hours for contracts created in `month_index`.
/// Declines from ~150h at launch to under 10h by June 2020.
pub fn completion_mean_hours(month_index: usize, ty: ContractType) -> f64 {
    let m = month_index as f64;
    let base = 150.0 * (-m / 7.0).exp() + 9.0 - 0.1 * m;
    let factor = match ty {
        ContractType::Sale => 1.0,
        ContractType::Purchase => 0.9,
        ContractType::Exchange => 0.6, // currency swaps settle fast
        // TRADE is tiny and noisy, with short-lived spikes in Feb/Apr 2020.
        ContractType::Trade => match month_index {
            20 | 22 => 6.0,
            _ => 1.2,
        },
        ContractType::VouchCopy => 0.8,
    };
    (base * factor).max(1.0)
}

/// Fraction of completed contracts that record a completion timestamp
/// (§4.1: "around 70% of all completed contracts").
pub const COMPLETION_DATE_RECORDED: f64 = 0.70;

// ---------------------------------------------------------------------------
// Population / class model (Table 6, §5.1–5.2).
// ---------------------------------------------------------------------------

/// Class arrival mix by era, indexed by [`BehaviourClass::ALL`] order
/// (A B C D E F G H I J K L). The mid-level SALE taker class (A) and the
/// SALE power-taker class (L) only emerge meaningfully in STABLE, matching
/// the narrative of §5.1.
pub fn class_arrival_mix(era: Era) -> [f64; 12] {
    let mut mix = raw_class_arrival_mix(era);
    let total: f64 = mix.iter().sum();
    mix.iter_mut().for_each(|w| *w /= total);
    mix
}

fn raw_class_arrival_mix(era: Era) -> [f64; 12] {
    match era {
        Era::SetUp => {
            [0.015, 0.050, 0.260, 0.160, 0.012, 0.050, 0.008, 0.040, 0.060, 0.330, 0.004, 0.001]
        }
        Era::Stable => {
            [0.050, 0.050, 0.330, 0.115, 0.010, 0.040, 0.007, 0.035, 0.050, 0.300, 0.004, 0.005]
        }
        Era::Covid19 => {
            [0.050, 0.060, 0.370, 0.115, 0.010, 0.040, 0.007, 0.040, 0.050, 0.245, 0.004, 0.005]
        }
    }
}

/// Share of members who are structural "never-completers": window-shoppers
/// and flakes whose deals overwhelmingly fall through regardless of
/// activity. This is the behavioural source of the zero inflation the
/// paper's ZIP models detect (Vuong tests prefer ZIP for every model).
pub const NON_COMPLETER_SHARE: f64 = 0.15;

/// Probability that a would-be completion involving a never-completer is
/// downgraded to Incomplete.
pub const NON_COMPLETER_KILL: f64 = 0.80;

/// Boost applied to the Complete weight of [`status_mix`] to compensate for
/// never-completer downgrades, keeping the aggregate Table 1 completion
/// rates at the paper's levels. The effective kill rate differs by type
/// because power users (who are never flakes) dominate some party roles —
/// Exchange/Sale takers are mostly power classes, Purchase parties mostly
/// are not — so the boost is type-specific, tuned against the realised
/// completion rates.
pub fn complete_boost(ty: ContractType) -> f64 {
    match ty {
        ContractType::Sale => 1.24,
        ContractType::Purchase => 1.25,
        ContractType::Exchange => 1.10,
        ContractType::Trade => 1.08,
        ContractType::VouchCopy => 1.14,
    }
}

/// Monthly churn probability by class: one-shot classes leave fast, power
/// users persist for the whole study.
pub fn churn_probability(class: BehaviourClass) -> f64 {
    if class.is_single_shot() {
        0.75
    } else if class.is_power_user() {
        0.03
    } else {
        0.30
    }
}

// ---------------------------------------------------------------------------
// Content / value calibration (Tables 3–5).
// ---------------------------------------------------------------------------

/// Probability that a *public* contract is associated with a thread
/// (§3: 68.4% of public contracts).
pub const THREAD_LINK_PROBABILITY: f64 = 0.684;

/// Log-normal σ of contract USD values.
pub const VALUE_SIGMA: f64 = 1.25;

/// Mean USD value of the *body* of the value distribution per contract
/// type. The paper's per-type averages (Exchange $104, Purchase $78, Sale
/// $71, Trade $58) include the heavy >$1,000 tail, which the simulator
/// plants separately at [`HIGH_VALUE_PROBABILITY`]; the body means are set
/// ~35% below the reported averages so the tail-inclusive averages land on
/// the paper's numbers.
pub fn value_mean_usd(ty: ContractType) -> f64 {
    match ty {
        ContractType::Sale => 46.0,
        ContractType::Purchase => 51.0,
        ContractType::Exchange => 68.0,
        ContractType::Trade => 38.0,
        ContractType::VouchCopy => 0.0, // reputation only
    }
}

/// Probability a valued public completed contract is a "high-value" trade
/// (> $1,000; the paper manually checks 163 of them).
pub const HIGH_VALUE_PROBABILITY: f64 = 0.014;

/// Verification-outcome mix for planted high-value chain references
/// (§4.5: 50% confirmed, 43% different value, 7% unconfirmed).
pub const VERDICT_MIX: [f64; 3] = [0.50, 0.43, 0.07];

/// The study window, re-exported for the engine's month loop.
pub fn months() -> Vec<YearMonth> {
    StudyWindow::months().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_tables_cover_window_and_sum_to_paper_scale() {
        assert_eq!(MONTHLY_CREATED.len(), StudyWindow::n_months());
        assert_eq!(MONTHLY_NEW_MEMBERS.len(), StudyWindow::n_months());
        let total: f64 = MONTHLY_CREATED.iter().sum();
        assert!((150_000.0..230_000.0).contains(&total), "total {total} vs paper 188,236");
    }

    #[test]
    fn type_mix_is_a_distribution_every_month() {
        for m in 0..25 {
            let mix = type_mix(m);
            assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-9, "month {m}");
            assert!(mix.iter().all(|p| *p >= 0.0));
        }
        // Exchange leads at launch, Sale leads after the mandate.
        assert!(type_mix(0)[2] > type_mix(0)[0]);
        assert!(type_mix(12)[0] > 0.6);
        // Vouch Copy absent before Feb 2020, present after.
        assert_eq!(type_mix(19)[4], 0.0);
        assert!(type_mix(24)[4] > type_mix(20)[4]);
    }

    #[test]
    fn parse_scale_accepts_positive_finite_and_rejects_the_rest() {
        assert_eq!(parse_scale("0.1"), Ok(0.1));
        assert_eq!(parse_scale(" 2 "), Ok(2.0));
        for bad in ["0", "-1", "0.0", "-0.5", "inf", "+inf", "-inf", "NaN", "nan", "ten", ""] {
            let err = parse_scale(bad).unwrap_err();
            assert!(err.contains("--scale"), "error for {bad:?} should name the flag: {err}");
        }
    }

    #[test]
    fn status_mixes_are_distributions() {
        for ty in ContractType::ALL {
            let mix = status_mix(ty);
            let s: f64 = mix.iter().sum();
            assert!((s - 1.0).abs() < 5e-3, "{ty:?} sums to {s}");
        }
        // Exchange completes best, Sale worst (Table 1).
        assert!(status_mix(ContractType::Exchange)[0] > status_mix(ContractType::Sale)[0] * 2.0);
    }

    #[test]
    fn visibility_declines_and_sale_is_most_private() {
        assert!(public_base(2) > public_base(0));
        assert!(public_base(8) > public_base(9));
        assert_eq!(public_base(12), 0.10);
        for ty in ContractType::ALL {
            if ty != ContractType::Sale {
                assert!(public_type_factor(ty) > public_type_factor(ContractType::Sale));
            }
        }
    }

    #[test]
    fn completion_times_decline() {
        for ty in ContractType::ALL {
            assert!(
                completion_mean_hours(0, ty) > completion_mean_hours(24, ty),
                "{ty:?} must speed up over the window"
            );
            assert!(completion_mean_hours(24, ty) >= 1.0);
        }
        // June 2020: under 10 hours for the dominant types.
        assert!(completion_mean_hours(24, ContractType::Exchange) < 10.0);
    }

    #[test]
    fn class_mixes_are_distributions() {
        for era in Era::ALL {
            let mix = class_arrival_mix(era);
            assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{era}");
        }
        // L arrives more in STABLE than SET-UP (the new taker power class).
        let l = BehaviourClass::L.index();
        assert!(class_arrival_mix(Era::Stable)[l] > class_arrival_mix(Era::SetUp)[l]);
    }

    #[test]
    fn config_builders() {
        let c = SimConfig::paper_default().with_seed(9).with_scale(0.5).with_uniform_matching(true);
        assert_eq!(c.seed, 9);
        assert_eq!(c.scale, 0.5);
        assert!(c.uniform_matching);
    }
}
