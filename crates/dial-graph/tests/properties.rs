//! Property-based tests of degree bookkeeping against a brute-force oracle.

use dial_graph::{concentration_curve, ContractGraph, DegreeKind};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Degrees computed incrementally equal a brute-force recount of
    /// distinct counterparties, for any edge multiset.
    #[test]
    fn degrees_match_brute_force(
        edges in prop::collection::vec((0u32..12, 0u32..12, any::<bool>()), 0..200),
    ) {
        let mut g = ContractGraph::new(12);
        let mut applied = Vec::new();
        for (m, t, bi) in edges {
            if m != t {
                g.add_contract(m, t, bi);
                applied.push((m, t, bi));
            }
        }
        for u in 0..12u32 {
            let mut raw = HashSet::new();
            let mut inbound = HashSet::new();
            let mut outbound = HashSet::new();
            for &(m, t, bi) in &applied {
                if m == u {
                    raw.insert(t);
                    outbound.insert(t);
                    if bi {
                        inbound.insert(t);
                    }
                }
                if t == u {
                    raw.insert(m);
                    inbound.insert(m);
                    if bi {
                        outbound.insert(m);
                    }
                }
            }
            prop_assert_eq!(g.degree(u, DegreeKind::Raw), raw.len());
            prop_assert_eq!(g.degree(u, DegreeKind::Inbound), inbound.len());
            prop_assert_eq!(g.degree(u, DegreeKind::Outbound), outbound.len());
        }
        prop_assert_eq!(g.n_contracts(), applied.len());
    }

    /// Histogram mass equals the number of users within the cutoff, and the
    /// summary maxima bound every histogram bucket index with mass.
    #[test]
    fn histogram_consistency(
        edges in prop::collection::vec((0u32..10, 0u32..10), 0..150),
    ) {
        let mut g = ContractGraph::new(10);
        for (m, t) in edges {
            if m != t {
                g.add_contract(m, t, false);
            }
        }
        let hist = g.degree_histogram(DegreeKind::Raw, 9);
        let within: usize = hist.iter().sum();
        let degrees = g.degrees(DegreeKind::Raw);
        let expect = degrees.iter().filter(|d| **d <= 9).count();
        prop_assert_eq!(within, expect);
        let s = g.summary();
        prop_assert_eq!(s.max_raw, degrees.iter().copied().max().unwrap_or(0));
        prop_assert!(s.active_users <= 10);
    }

    /// Concentration curves are monotone, bounded, and reach 1.
    #[test]
    fn concentration_curve_valid(counts in prop::collection::vec(0.0f64..1e4, 1..100)) {
        prop_assume!(counts.iter().sum::<f64>() > 0.0);
        let ps: Vec<f64> = (1..=20).map(|i| f64::from(i) / 20.0).collect();
        let curve = concentration_curve(&counts, &ps);
        for w in curve.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        for (_, share) in &curve {
            prop_assert!((0.0..=1.0 + 1e-9).contains(share));
        }
        prop_assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
