//! Market concentration curves (Figures 5–6).
//!
//! Figure 5 plots, for the top *p* percentile of users (or threads), the
//! share of all contracts they account for. These helpers compute that
//! curve from any per-entity activity count vector.

use dial_stats::descriptive::top_share;

/// Share of total activity carried by the top `fraction` of entities.
/// Thin wrapper over [`dial_stats::descriptive::top_share`] to keep graph
/// pipelines self-contained.
pub fn share_of_top(counts: &[f64], fraction: f64) -> f64 {
    top_share(counts, fraction)
}

/// The full concentration curve: for each percentile in `percentiles`
/// (fractions in `[0,1]`), the share of total activity carried by that top
/// slice. Output pairs are `(fraction, share)`.
pub fn concentration_curve(counts: &[f64], percentiles: &[f64]) -> Vec<(f64, f64)> {
    percentiles.iter().map(|&p| (p, top_share(counts, p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let counts = vec![100.0, 50.0, 10.0, 5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let ps: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let curve = concentration_curve(&counts, &ps);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concentrated_market_shows_high_top_share() {
        // 5% of 100 users hold 70 of 100 contracts.
        let mut counts = vec![70.0 / 5.0; 5];
        counts.extend(vec![30.0 / 95.0; 95]);
        assert!((share_of_top(&counts, 0.05) - 0.7).abs() < 1e-9);
    }
}
