//! Degree assortativity (extension).
//!
//! §6 describes SET-UP as power-users trading *with one another* ("most
//! flow volumes trading within their own class types") and STABLE as the
//! growth of business-to-customer patterns — power-users cultivating large
//! numbers of small-scale customers. In network terms that is a shift from
//! degree-assortative mixing toward disassortative mixing, measured here by
//! Newman's degree-assortativity coefficient (the Pearson correlation of
//! endpoint degrees over edges).

/// Newman's degree assortativity over an edge list, given the raw degree of
/// every node. Returns `None` for fewer than 2 edges or zero variance.
pub fn degree_assortativity(degrees: &[u64], edges: &[(u32, u32)]) -> Option<f64> {
    if edges.len() < 2 {
        return None;
    }
    // Pearson correlation over the edge-endpoint degree pairs, symmetrised
    // (each edge contributes both orientations).
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    let mut n = 0.0;
    for &(a, b) in edges {
        let da = degrees[a as usize] as f64;
        let db = degrees[b as usize] as f64;
        for (x, y) in [(da, db), (db, da)] {
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
            n += 1.0;
        }
    }
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n).powi(2);
    let vy = syy / n - (sy / n).powi(2);
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the raw-degree vector from an edge list.
    fn degrees(n: usize, edges: &[(u32, u32)]) -> Vec<u64> {
        let mut sets = vec![std::collections::HashSet::new(); n];
        for &(a, b) in edges {
            sets[a as usize].insert(b);
            sets[b as usize].insert(a);
        }
        sets.iter().map(|s| s.len() as u64).collect()
    }

    #[test]
    fn star_graph_is_disassortative() {
        // A hub serving leaves: high-degree endpoints always pair with
        // degree-1 endpoints.
        let edges: Vec<(u32, u32)> = (1..20u32).map(|i| (0, i)).collect();
        let d = degrees(20, &edges);
        let r = degree_assortativity(&d, &edges).unwrap();
        assert!(r < -0.9, "star graph r = {r}");
    }

    #[test]
    fn segregated_cliques_are_assortative() {
        // A clique of hubs plus disjoint dumbbell pairs: like mixes with
        // like.
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        for i in 0..10u32 {
            edges.push((6 + 2 * i, 7 + 2 * i));
        }
        let d = degrees(26, &edges);
        let r = degree_assortativity(&d, &edges).unwrap();
        assert!(r > 0.9, "segregated graph r = {r}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(degree_assortativity(&[1, 1], &[(0, 1)]), None);
        // Regular ring: all degrees equal → zero variance.
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let d = degrees(4, &edges);
        assert_eq!(degree_assortativity(&d, &edges), None);
    }
}
