//! The contractual social network (§4.2 of the paper).
//!
//! Two users share a **raw** connection if they share at least one contract.
//! An **outbound** connection runs from the user who initiated (made) a
//! contract to its counterparty; an **inbound** connection runs in the
//! opposite direction (the counterparty accepts). For bidirectional contract
//! types (Exchange/Trade) both directions are counted for both parties. A
//! user's raw/inbound/outbound degree is the number of *distinct* users they
//! are connected to in that sense — degree reflects breadth of
//! counterparties, not contract volume.

pub mod assortativity;
pub mod concentration;
pub mod network;

pub use assortativity::degree_assortativity;
pub use concentration::{concentration_curve, share_of_top};
pub use network::{ContractGraph, DegreeKind, DegreeSummary};
