//! The contract graph and its degree measures.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which degree notion to read from the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegreeKind {
    /// Distinct users sharing at least one contract.
    Raw,
    /// Distinct users from whom contracts were received.
    Inbound,
    /// Distinct users to whom contracts were initiated.
    Outbound,
}

/// An undirected/directed multigraph over dense user indices, tracking the
/// distinct-counterparty sets that define raw/inbound/outbound degrees.
#[derive(Debug, Clone, Default)]
pub struct ContractGraph {
    raw: Vec<HashSet<u32>>,
    inbound: Vec<HashSet<u32>>,
    outbound: Vec<HashSet<u32>>,
    edges: usize,
}

impl ContractGraph {
    /// Creates an empty graph over `n_users` nodes.
    pub fn new(n_users: usize) -> Self {
        Self {
            raw: vec![HashSet::new(); n_users],
            inbound: vec![HashSet::new(); n_users],
            outbound: vec![HashSet::new(); n_users],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn n_users(&self) -> usize {
        self.raw.len()
    }

    /// Number of contracts added.
    pub fn n_contracts(&self) -> usize {
        self.edges
    }

    /// Records one contract from `maker` to `taker`.
    ///
    /// For one-way types the maker gains an outbound connection and the
    /// taker an inbound one. For bidirectional types (Exchange/Trade), both
    /// inbound *and* outbound connections are counted for both parties, as
    /// §4.2 specifies.
    pub fn add_contract(&mut self, maker: u32, taker: u32, bidirectional: bool) {
        let (m, t) = (maker as usize, taker as usize);
        assert!(m < self.raw.len() && t < self.raw.len(), "user out of range");
        assert_ne!(maker, taker, "self-contract");
        self.edges += 1;
        self.raw[m].insert(taker);
        self.raw[t].insert(maker);
        self.outbound[m].insert(taker);
        self.inbound[t].insert(maker);
        if bidirectional {
            self.outbound[t].insert(maker);
            self.inbound[m].insert(taker);
        }
    }

    /// Degree of one user.
    pub fn degree(&self, user: u32, kind: DegreeKind) -> usize {
        let sets = match kind {
            DegreeKind::Raw => &self.raw,
            DegreeKind::Inbound => &self.inbound,
            DegreeKind::Outbound => &self.outbound,
        };
        sets[user as usize].len()
    }

    /// All degrees of the chosen kind, indexed by user.
    pub fn degrees(&self, kind: DegreeKind) -> Vec<u64> {
        let sets = match kind {
            DegreeKind::Raw => &self.raw,
            DegreeKind::Inbound => &self.inbound,
            DegreeKind::Outbound => &self.outbound,
        };
        sets.iter().map(|s| s.len() as u64).collect()
    }

    /// Histogram of degree values: `hist[d]` = number of users with degree
    /// `d`, truncated at `max_degree` (the paper plots up to 15).
    pub fn degree_histogram(&self, kind: DegreeKind, max_degree: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_degree + 1];
        for d in self.degrees(kind) {
            if (d as usize) <= max_degree {
                hist[d as usize] += 1;
            }
        }
        hist
    }

    /// Summary statistics of the current network (one point of Figure 8).
    pub fn summary(&self) -> DegreeSummary {
        let raw = self.degrees(DegreeKind::Raw);
        let inb = self.degrees(DegreeKind::Inbound);
        let out = self.degrees(DegreeKind::Outbound);
        let active = raw.iter().filter(|d| **d > 0).count();
        let avg_raw =
            if active == 0 { 0.0 } else { raw.iter().sum::<u64>() as f64 / active as f64 };
        DegreeSummary {
            max_raw: raw.iter().copied().max().unwrap_or(0),
            max_inbound: inb.iter().copied().max().unwrap_or(0),
            max_outbound: out.iter().copied().max().unwrap_or(0),
            avg_raw_degree: avg_raw,
            active_users: active,
        }
    }
}

/// Max/average degree summary for one network snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Maximum raw degree.
    pub max_raw: u64,
    /// Maximum inbound degree.
    pub max_inbound: u64,
    /// Maximum outbound degree.
    pub max_outbound: u64,
    /// Mean raw degree over users with at least one connection.
    pub avg_raw_degree: f64,
    /// Users with at least one raw connection.
    pub active_users: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_contract_directions() {
        let mut g = ContractGraph::new(3);
        g.add_contract(0, 1, false);
        assert_eq!(g.degree(0, DegreeKind::Raw), 1);
        assert_eq!(g.degree(0, DegreeKind::Outbound), 1);
        assert_eq!(g.degree(0, DegreeKind::Inbound), 0);
        assert_eq!(g.degree(1, DegreeKind::Inbound), 1);
        assert_eq!(g.degree(1, DegreeKind::Outbound), 0);
        assert_eq!(g.degree(2, DegreeKind::Raw), 0);
    }

    #[test]
    fn bidirectional_counts_both_ways() {
        let mut g = ContractGraph::new(2);
        g.add_contract(0, 1, true);
        for u in 0..2 {
            assert_eq!(g.degree(u, DegreeKind::Inbound), 1);
            assert_eq!(g.degree(u, DegreeKind::Outbound), 1);
            assert_eq!(g.degree(u, DegreeKind::Raw), 1);
        }
    }

    #[test]
    fn repeat_contracts_do_not_inflate_degree() {
        let mut g = ContractGraph::new(2);
        for _ in 0..10 {
            g.add_contract(0, 1, false);
        }
        assert_eq!(g.degree(0, DegreeKind::Raw), 1);
        assert_eq!(g.n_contracts(), 10);
    }

    #[test]
    fn hub_degree_and_histogram() {
        // User 0 sells to everyone: a hub with inbound 0, outbound n-1.
        let n = 20;
        let mut g = ContractGraph::new(n);
        for t in 1..n as u32 {
            g.add_contract(0, t, false);
        }
        assert_eq!(g.degree(0, DegreeKind::Outbound), n - 1);
        let hist = g.degree_histogram(DegreeKind::Raw, 15);
        assert_eq!(hist[1], n - 1, "19 spokes with raw degree 1");
        assert_eq!(hist[0], 0);
        let s = g.summary();
        assert_eq!(s.max_raw, (n - 1) as u64);
        assert_eq!(s.max_outbound, (n - 1) as u64);
        assert_eq!(s.max_inbound, 1);
        assert_eq!(s.active_users, n);
        let expect_avg = (2.0 * (n as f64 - 1.0)) / n as f64;
        assert!((s.avg_raw_degree - expect_avg).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn self_contract_rejected() {
        let mut g = ContractGraph::new(2);
        g.add_contract(1, 1, false);
    }
}
